#include "cpu/core.hh"

#include <algorithm>
#include <bit>

#include "sim/env.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

/** Computed-goto availability for the fused-run executor — same
 *  detection as isa/interp.cc; the portable switch build simply never
 *  defines fetchRunThreaded and threadedEnabled_ stays false. */
#if defined(__GNUC__) || defined(__clang__)
#define REMAP_CORE_HAVE_THREADED 1
#else
#define REMAP_CORE_HAVE_THREADED 0
#endif

namespace remap::cpu
{

namespace
{

/** Execution latency by scheduling class, in core cycles. */
Cycle
opLatency(isa::OpClass cls)
{
    using isa::OpClass;
    switch (cls) {
      case OpClass::IntAlu:   return 1;
      case OpClass::IntMult:  return 3;
      case OpClass::IntDiv:   return 20;
      case OpClass::FpAlu:    return 4;
      case OpClass::FpMult:   return 6;
      case OpClass::FpDiv:    return 24;
      case OpClass::Branch:   return 1;
      case OpClass::SplLoad:
      case OpClass::SplInit:
      case OpClass::SplCfg:   return 1;
      case OpClass::SplStore: return 2;
      case OpClass::SplLoadMem:
      case OpClass::SplStoreMem: return 2; // overridden by cache
      case OpClass::Store:    return 1;
      case OpClass::Fence:    return 1;
      case OpClass::Halt:     return 1;
      case OpClass::Load:
      case OpClass::Amo:      return 2; // overridden by cache access
    }
    return 1;
}

/** Synthetic code-space base for a thread (outside workload data). */
std::uint64_t
codeBase(ThreadId tid)
{
    return 0x4000'0000ULL + (std::uint64_t(tid) << 20);
}

} // namespace

CoreParams
CoreParams::ooo1()
{
    CoreParams p;
    p.name = "ooo1";
    return p;
}

CoreParams
CoreParams::ooo2()
{
    CoreParams p;
    p.name = "ooo2";
    p.fetchWidth = 4;
    p.renameWidth = 4;
    p.issueWidth = 2;
    p.retireWidth = 2;
    p.intAlus = 2;
    p.branchUnits = 2;
    return p;
}

OooCore::OooCore(CoreId id, const CoreParams &params,
                 mem::MemSystem *mem, mem::MemoryImage *image)
    : id_(id),
      params_(params),
      mem_(mem),
      image_(image),
      bpred_(params.bpred),
      statGroup_("core" + std::to_string(id) + "." + params.name),
      metaGroup_("core" + std::to_string(id) + "." + params.name)
{
    fb_.reset(params_.fetchBufferEntries);
    rob_.reset(params_.robEntries);
    // Kill switches latched once per core (see sim/env.hh), so a
    // single process can construct reference and fast-path systems
    // side by side: the block cache governs pre-decode, fused fetch
    // runs and the operand-readiness memo; threaded dispatch selects
    // the computed-goto fused-run executor.
    blockCacheEnabled_ = !env::noBlockCache();
    threadedEnabled_ = REMAP_CORE_HAVE_THREADED && !env::noThreaded();
    if (mem_) {
        warmILineMask_ =
            ~std::uint64_t{mem_->l1i(id_).lineBytes() - 1};
        const std::uint64_t dlb = mem_->l1d(id_).lineBytes();
        warmDLineMask_ = ~(dlb - 1);
        warmDLineShift_ =
            static_cast<unsigned>(std::countr_zero(dlb));
    }
    statGroup_.addCounter("committed_insts", &committedInsts);
    statGroup_.addCounter("committed_int", &committedIntOps);
    statGroup_.addCounter("committed_fp", &committedFpOps);
    statGroup_.addCounter("committed_loads", &committedLoads);
    statGroup_.addCounter("committed_stores", &committedStores);
    statGroup_.addCounter("committed_branches", &committedBranches);
    statGroup_.addCounter("committed_spl", &committedSplOps);
    statGroup_.addCounter("fetched_insts", &fetchedInsts);
    statGroup_.addCounter("mispredicts", &mispredicts);
    statGroup_.addCounter("rob_full_stalls", &robFullStalls);
    statGroup_.addCounter("iq_full_stalls", &iqFullStalls);
    statGroup_.addCounter("lsq_full_stalls", &lsqFullStalls);
    statGroup_.addCounter("spl_commit_stalls", &splCommitStalls);
    statGroup_.addCounter("spl_fetch_stalls", &splFetchStalls);
    statGroup_.addCounter("fetch_stall_cycles", &fetchStallCycles);
    statGroup_.addCounter("active_cycles", &activeCycles);
    statGroup_.addCounter("bpred_lookups", &bpred_.lookups);
    statGroup_.addCounter("bpred_mispredicts", &bpred_.mispredicts);
    statGroup_.addCounter("bpred_btb_misses", &bpred_.btbMisses);
    metaGroup_.addCounter("block_fused_insts", &blockFusedInsts);
    metaGroup_.addCounter("block_fused_runs", &blockFusedRuns);
    metaGroup_.addCounter("block_generic_insts", &blockGenericInsts);
    metaGroup_.addCounter("rob_wb_skips", &robWbSkips);
    metaGroup_.addCounter("rob_issue_skips", &robIssueSkips);
}

void
OooCore::attachSpl(spl::SplFabric *fabric, unsigned local_slot)
{
    spl_ = fabric;
    splSlot_ = local_slot;
}

void
OooCore::setTracer(trace::Tracer *t, std::uint32_t tid)
{
    tracer_ = t;
    traceTid_ = tid;
    splCommitStallStart_ = 0;
    splFetchStallStart_ = 0;
}

void
OooCore::traceEndStall(Cycle now, bool commit_side)
{
    Cycle &start =
        commit_side ? splCommitStallStart_ : splFetchStallStart_;
    if (start == 0 || now <= start) {
        start = 0;
        return;
    }
    tracer_->complete(trace::Category::Core,
                      commit_side ? "spl_commit_stall"
                                  : "spl_fetch_stall",
                      traceTid_, start, now - start,
                      {trace::Arg{"core", std::uint64_t(id_)}});
    start = 0;
}

void
OooCore::bindThread(ThreadContext *ctx)
{
    REMAP_ASSERT(rob_.empty() && fb_.empty(),
                 "binding a thread over a live pipeline");
    ctx_ = ctx;
    fetchHalted_ = ctx == nullptr || ctx->halted;
    fetchResumeCycle_ = 0;
    fetchBlockedOnSeq_ = 0;
    wbSkip_ = 0;
    issueSkip_ = 0;
    std::fill(std::begin(intProducer_), std::end(intProducer_), 0);
    std::fill(std::begin(fpProducer_), std::end(fpProducer_), 0);
    rebuildDecoded();
}

void
OooCore::rebuildDecoded()
{
    // Rebuild unconditionally rather than keying on the program
    // pointer: a rebuild is O(program size) and only happens at
    // bind/restore points, and never trusting a stale pointer rules
    // out aliasing against a recycled Program allocation.
    if (!blockCacheEnabled_ || !ctx_ || !ctx_->program) {
        decodedFor_ = nullptr;
        return;
    }
    decoded_.build(*ctx_->program);
    decodedFor_ = ctx_->program;
}

bool
OooCore::done() const
{
    return !ctx_ || (ctx_->halted && rob_.empty() && fb_.empty());
}

const OooCore::DynInst *
OooCore::findBySeq(std::uint64_t seq) const
{
    if (rob_.empty() || seq < rob_.front().seq ||
        seq > rob_.back().seq)
        return nullptr;
    const DynInst &d = rob_[seq - rob_.front().seq];
    return &d;
}

std::uint64_t
OooCore::producerOf(bool fp, isa::RegIndex r) const
{
    std::uint64_t seq = fp ? fpProducer_[r] : intProducer_[r];
    if (seq == 0 || !findBySeq(seq))
        return 0;
    return seq;
}

void
OooCore::recordProducer(const DynInst &d)
{
    if (d.flags & isa::kWritesInt)
        intProducer_[d.si->rd] = d.seq;
    else if (d.flags & isa::kWritesFp)
        fpProducer_[d.si->rd] = d.seq;
}

bool
OooCore::operandsReady(DynInst &d, Cycle now)
{
    // Memo fast path: readiness is monotone (a producer's stage only
    // advances and its completeCycle is fixed once issued), so a
    // cached lower bound on the first possibly-ready cycle is safe —
    // before that cycle the walk below provably returns false.
    // Gated with the block cache so REMAP_NO_BLOCK_CACHE=1 restores
    // the pristine per-cycle producer walk.
    if (blockCacheEnabled_ && now < d.notReadyUntil)
        return false;
    for (std::uint64_t dep : {d.dep1, d.dep2}) {
        if (dep == 0)
            continue;
        const DynInst *p = findBySeq(dep);
        if (p && (p->stage != Stage::Completed ||
                  p->completeCycle > now)) {
            // An issued producer becomes consumable exactly at its
            // completeCycle (writeback runs before issue each tick).
            // An unissued one sits at or after this core's walk
            // position (producers have lower seqs), so it issues at
            // now + 1 at the earliest and, with the 1-cycle minimum
            // op latency, cannot be consumable before now + 2.
            d.notReadyUntil = p->stage == Stage::Issued
                                  ? p->completeCycle
                                  : now + 2;
            return false;
        }
    }
    d.notReadyUntil = 0;
    return true;
}

/**
 * Every opcode's architectural-effect body, defined exactly once and
 * instantiated into both execution engines (DESIGN.md §14):
 *
 *  - funcExecute() expands S and R entries into a switch — the
 *    reference path, used by the generic fetch path, the
 *    REMAP_NO_THREADED build and functional warming;
 *  - fetchRunThreaded() expands S entries into computed-goto labels
 *    and R entries into a panic slot — the threaded fused-run
 *    executor, which by the kEndsRun run construction can only ever
 *    see S ("simple") opcodes.
 *
 * Single definition ⇒ the two dispatch mechanisms are bit-identical
 * by construction; the kill-switch differential test crosses them
 * anyway. Entries MUST stay in Opcode declaration order — the label
 * table is indexed by DecodedInst::handler, which is the opcode byte.
 *
 * Body context (provided by each instantiation site): `t` the bound
 * ThreadContext, `ip` the Instruction, `d` the DynInst being built,
 * `a`/`b` the int sources, `fa`/`fbv` the FP sources, `next_pc` the
 * fall-through successor (R bodies may redirect it). S bodies cannot
 * stall; two R bodies (SPL_STORE/SPL_STOREM) `return false` to stall
 * fetch, which is why R is never instantiated in the goto engine.
 */
#define REMAP_CORE_OPS(S, R)                                          \
    S(ADD, t.writeInt(ip->rd, a + b))                                 \
    S(SUB, t.writeInt(ip->rd, a - b))                                 \
    S(AND, t.writeInt(ip->rd, a & b))                                 \
    S(OR, t.writeInt(ip->rd, a | b))                                  \
    S(XOR, t.writeInt(ip->rd, a ^ b))                                 \
    S(SLL, t.writeInt(ip->rd, static_cast<std::int64_t>(              \
               static_cast<std::uint64_t>(a) << (b & 63))))           \
    S(SRL, t.writeInt(ip->rd, static_cast<std::int64_t>(              \
               static_cast<std::uint64_t>(a) >> (b & 63))))           \
    S(SRA, t.writeInt(ip->rd, a >> (b & 63)))                         \
    S(SLT, t.writeInt(ip->rd, a < b ? 1 : 0))                         \
    S(SLTU, t.writeInt(ip->rd, static_cast<std::uint64_t>(a) <        \
                               static_cast<std::uint64_t>(b) ? 1 : 0))\
    S(MIN, t.writeInt(ip->rd, std::min(a, b)))                        \
    S(MAX, t.writeInt(ip->rd, std::max(a, b)))                        \
    S(MUL, t.writeInt(ip->rd, a * b))                                 \
    S(DIV, t.writeInt(ip->rd, b == 0 ? -1 : a / b))                   \
    S(REM, t.writeInt(ip->rd, b == 0 ? a : a % b))                    \
    S(ADDI, t.writeInt(ip->rd, a + ip->imm))                          \
    S(ANDI, t.writeInt(ip->rd, a & ip->imm))                          \
    S(ORI, t.writeInt(ip->rd, a | ip->imm))                           \
    S(XORI, t.writeInt(ip->rd, a ^ ip->imm))                          \
    S(SLLI, t.writeInt(ip->rd, static_cast<std::int64_t>(             \
                static_cast<std::uint64_t>(a) << (ip->imm & 63))))    \
    S(SRLI, t.writeInt(ip->rd, static_cast<std::int64_t>(             \
                static_cast<std::uint64_t>(a) >> (ip->imm & 63))))    \
    S(SRAI, t.writeInt(ip->rd, a >> (ip->imm & 63)))                  \
    S(SLTI, t.writeInt(ip->rd, a < ip->imm ? 1 : 0))                  \
    S(LI, t.writeInt(ip->rd, ip->imm))                                \
    S(FADD, t.fpRegs[ip->rd] = fa + fbv)                              \
    S(FSUB, t.fpRegs[ip->rd] = fa - fbv)                              \
    S(FMUL, t.fpRegs[ip->rd] = fa * fbv)                              \
    S(FDIV, t.fpRegs[ip->rd] = fa / fbv)                              \
    S(FMIN, t.fpRegs[ip->rd] = std::min(fa, fbv))                     \
    S(FMAX, t.fpRegs[ip->rd] = std::max(fa, fbv))                     \
    S(FLT, t.writeInt(ip->rd, fa < fbv ? 1 : 0))                      \
    S(FLE, t.writeInt(ip->rd, fa <= fbv ? 1 : 0))                     \
    S(FCVT_I2F, t.fpRegs[ip->rd] = static_cast<double>(a))            \
    S(FCVT_F2I, t.writeInt(ip->rd, static_cast<std::int64_t>(fa)))    \
    S(FMV, t.fpRegs[ip->rd] = fa)                                     \
    S(LD, d.memAddr = static_cast<Addr>(a + ip->imm);                 \
          d.memLen = 8;                                               \
          t.writeInt(ip->rd, image_->readI64(d.memAddr)))             \
    S(LW, d.memAddr = static_cast<Addr>(a + ip->imm);                 \
          d.memLen = 4;                                               \
          t.writeInt(ip->rd, image_->readI32(d.memAddr)))             \
    S(LBU, d.memAddr = static_cast<Addr>(a + ip->imm);                \
           d.memLen = 1;                                              \
           t.writeInt(ip->rd, image_->readU8(d.memAddr)))             \
    S(SD, d.memAddr = static_cast<Addr>(a + ip->imm);                 \
          d.memLen = 8;                                               \
          d.storeValue = b;                                           \
          image_->writeI64(d.memAddr, b))                             \
    S(SW, d.memAddr = static_cast<Addr>(a + ip->imm);                 \
          d.memLen = 4;                                               \
          d.storeValue = b;                                           \
          image_->writeI32(d.memAddr, static_cast<std::int32_t>(b)))  \
    S(SB, d.memAddr = static_cast<Addr>(a + ip->imm);                 \
          d.memLen = 1;                                               \
          d.storeValue = b;                                           \
          image_->writeU8(d.memAddr, static_cast<std::uint8_t>(b)))   \
    S(FLD, d.memAddr = static_cast<Addr>(a + ip->imm);                \
           d.memLen = 8;                                              \
           t.fpRegs[ip->rd] = image_->readF64(d.memAddr))             \
    S(FSD, d.memAddr = static_cast<Addr>(a + ip->imm);                \
           d.memLen = 8;                                              \
           image_->writeF64(d.memAddr, fbv))                          \
    S(AMOADD, d.memAddr = static_cast<Addr>(a);                       \
              d.memLen = 8;                                           \
              const std::int64_t old = image_->readI64(d.memAddr);    \
              image_->writeI64(d.memAddr, old + b);                   \
              t.writeInt(ip->rd, old))                                \
    S(AMOSWAP, d.memAddr = static_cast<Addr>(a);                      \
               d.memLen = 8;                                          \
               const std::int64_t old = image_->readI64(d.memAddr);   \
               image_->writeI64(d.memAddr, b);                        \
               t.writeInt(ip->rd, old))                               \
    R(FENCE, (void)0)                                                 \
    R(BEQ, if (a == b) next_pc = ip->target)                          \
    R(BNE, if (a != b) next_pc = ip->target)                          \
    R(BLT, if (a < b) next_pc = ip->target)                           \
    R(BGE, if (a >= b) next_pc = ip->target)                          \
    R(BLTU, if (static_cast<std::uint64_t>(a) <                       \
                static_cast<std::uint64_t>(b))                        \
                next_pc = ip->target)                                 \
    R(BGEU, if (static_cast<std::uint64_t>(a) >=                      \
                static_cast<std::uint64_t>(b))                        \
                next_pc = ip->target)                                 \
    R(J, next_pc = ip->target)                                        \
    R(SPL_CFG, (void)0)                                               \
    R(SPL_LOAD,                                                       \
      REMAP_ASSERT(spl_, "spl_load on a core without a fabric");      \
      d.splLoadValue = b;                                             \
      spl_->funcLoad(splSlot_, static_cast<unsigned>(ip->imm),        \
                     static_cast<std::int32_t>(b)))                   \
    R(SPL_LOADM,                                                      \
      REMAP_ASSERT(spl_, "spl_loadm on a core without a fabric");     \
      d.memAddr = static_cast<Addr>(a + ip->imm);                     \
      d.memLen = 4;                                                   \
      d.splLoadValue = image_->readI32(d.memAddr);                    \
      spl_->funcLoad(splSlot_, static_cast<unsigned>(ip->imm2),       \
                     static_cast<std::int32_t>(d.splLoadValue)))      \
    R(SPL_LOADMB,                                                     \
      REMAP_ASSERT(spl_, "spl_loadmb on a core without a fabric");    \
      d.memAddr = static_cast<Addr>(a + ip->imm);                     \
      d.memLen = 1;                                                   \
      d.splLoadValue = image_->readU8(d.memAddr);                     \
      spl_->funcLoad(splSlot_, static_cast<unsigned>(ip->imm2),       \
                     static_cast<std::int32_t>(d.splLoadValue)))      \
    R(SPL_INIT,                                                       \
      REMAP_ASSERT(spl_, "spl_init on a core without a fabric");      \
      spl_->funcInit(splSlot_, static_cast<ConfigId>(ip->imm),        \
                     ip->imm2))                                       \
    R(SPL_BAR,                                                        \
      REMAP_ASSERT(spl_, "spl_bar on a core without a fabric");       \
      spl_->funcBar(splSlot_, static_cast<ConfigId>(ip->imm),         \
                    static_cast<std::uint32_t>(ip->imm2)))            \
    R(SPL_STORE,                                                      \
      REMAP_ASSERT(spl_, "spl_store on a core without a fabric");     \
      auto v = spl_->funcPop(splSlot_);                               \
      if (!v)                                                         \
          return false; /* stall fetch until a value is produced */   \
      d.splValue = *v;                                                \
      t.writeInt(ip->rd, static_cast<std::int64_t>(*v)))              \
    R(SPL_STOREM,                                                     \
      REMAP_ASSERT(spl_, "spl_storem on a core without a fabric");    \
      auto v = spl_->funcPop(splSlot_);                               \
      if (!v)                                                         \
          return false; /* stall fetch until a value is produced */   \
      d.splValue = *v;                                                \
      d.memAddr = static_cast<Addr>(a + ip->imm);                     \
      d.memLen = 4;                                                   \
      d.storeValue = *v;                                              \
      image_->writeI32(d.memAddr, *v))                                \
    R(HALT, (void)0)                                                  \
    S(NOP, (void)0)

namespace
{
/** Compile-time check that REMAP_CORE_OPS covers the whole Opcode
 *  enum in order (the label table below indexes it by opcode byte). */
#define REMAP_CORE_COUNT_OP(name, ...) +1
static_assert(0 REMAP_CORE_OPS(REMAP_CORE_COUNT_OP,
                               REMAP_CORE_COUNT_OP) ==
                  static_cast<int>(isa::Opcode::NOP) + 1,
              "REMAP_CORE_OPS must list every opcode");
#undef REMAP_CORE_COUNT_OP
} // namespace

bool
OooCore::funcExecute(const isa::Instruction &inst, DynInst &d)
{
    using isa::Opcode;
    ThreadContext &t = *ctx_;
    const isa::Instruction *ip = &inst;
    const std::int64_t a = t.readInt(inst.rs1);
    const std::int64_t b = t.readInt(inst.rs2);
    const double fa = t.fpRegs[inst.rs1];
    const double fbv = t.fpRegs[inst.rs2];
    std::uint32_t next_pc = t.pc + 1;

    switch (inst.op) {
#define REMAP_CORE_CASE_OP(name, ...)                                 \
      case Opcode::name: {                                            \
        __VA_ARGS__;                                                  \
        break;                                                        \
      }
        REMAP_CORE_OPS(REMAP_CORE_CASE_OP, REMAP_CORE_CASE_OP)
#undef REMAP_CORE_CASE_OP
    }
    t.pc = next_pc;
    return true;
}

#if REMAP_CORE_HAVE_THREADED
unsigned
OooCore::fetchRunThreaded(const isa::Instruction *code,
                          const isa::DecodedInst *table,
                          std::uint64_t base, std::uint32_t term,
                          Cycle now, unsigned n, Cycle &icache_ready,
                          bool &accessed_icache, bool &icache_pure_hit)
{
    // Label table in Opcode declaration order; non-simple opcodes
    // (run terminators) map to the panic slot — the run construction
    // in isa::DecodedProgram guarantees they never appear strictly
    // before `term`.
#define REMAP_CORE_TBL_S(name, ...) &&op_##name,
#define REMAP_CORE_TBL_R(name, ...) &&bad_op,
    static const void *const tbl[] = {
        REMAP_CORE_OPS(REMAP_CORE_TBL_S, REMAP_CORE_TBL_R)};
#undef REMAP_CORE_TBL_S
#undef REMAP_CORE_TBL_R
    static_assert(sizeof(tbl) / sizeof(tbl[0]) ==
                  static_cast<std::size_t>(isa::Opcode::NOP) + 1);

    ThreadContext &t = *ctx_;
    // Dispatch-loop locals live above every goto (C++ forbids jumps
    // over non-vacuous initializations); assigned per instruction in
    // the prologue below, mirroring funcExecute's const locals.
    const isa::Instruction *ip = nullptr;
    std::int64_t a = 0;
    std::int64_t b = 0;
    double fa = 0.0;
    double fbv = 0.0;
    std::uint32_t next_pc = 0;
    DynInst d;

    while (t.pc < term && n < params_.fetchWidth &&
           fb_.size() < params_.fetchBufferEntries) {
        const std::uint32_t pc = t.pc;
        ip = &code[pc];
        const isa::DecodedInst &dec = table[pc];

        d = DynInst{};
        d.si = ip;
        d.cls = dec.cls;
        d.flags = dec.flags;
        d.pcAddr = base + std::uint64_t(pc) * 8;
        d.usesFpQueue = (dec.flags & isa::kUsesFpQueue) != 0;

        if (!accessed_icache) {
            const std::uint64_t misses_before = mem_->l1iMisses(id_);
            icache_ready = mem_->access(id_, d.pcAddr,
                                        mem::AccessKind::IFetch, now);
            accessed_icache = true;
            icache_pure_hit = mem_->l1iMisses(id_) == misses_before;
            if (!icache_pure_hit)
                tickProgress_ = true;
        }

        a = t.readInt(ip->rs1);
        b = t.readInt(ip->rs2);
        fa = t.fpRegs[ip->rs1];
        fbv = t.fpRegs[ip->rs2];
        next_pc = pc + 1;
        goto *tbl[dec.handler];

#define REMAP_CORE_LBL_S(name, ...)                                   \
      op_##name: {                                                    \
        __VA_ARGS__;                                                  \
      }                                                               \
        goto executed;
#define REMAP_CORE_LBL_R(name, ...)
        REMAP_CORE_OPS(REMAP_CORE_LBL_S, REMAP_CORE_LBL_R)
#undef REMAP_CORE_LBL_S
#undef REMAP_CORE_LBL_R

      bad_op:
        REMAP_PANIC("non-simple opcode inside a fused run");

      executed:
        t.pc = next_pc;
        d.seq = nextSeq_++;
        d.fbReady = std::max(icache_ready, now + 1);
        ++fetchedInsts;
        tickProgress_ = true;
        fb_.push_back(d);
        ++n;
    }
    return n;
}
#endif // REMAP_CORE_HAVE_THREADED

void
OooCore::unbindThread()
{
    REMAP_ASSERT(drained(), "unbinding a thread mid-flight");
    ctx_ = nullptr;
    draining_ = false;
    fetchHalted_ = true;
}

void
OooCore::beginWarming()
{
    REMAP_ASSERT(drained(),
                 "functional warming entered with instructions in "
                 "flight");
    draining_ = false;
    warming_ = true;
    warmIFetchLine_ = ~std::uint64_t{0};
    for (std::uint64_t &l : warmDataLine_)
        l = ~std::uint64_t{0};
}

void
OooCore::warmTick(Cycle now)
{
    // Warming ticks always count as progress: the run loop must not
    // leap while cores are in a mode nextEventCycle() does not model.
    tickProgress_ = true;
    stallMask_ = 0;
    if (done())
        return;
    ++activeCycles;

    using isa::OpClass;
    REMAP_ASSERT(ctx_->pc < ctx_->program->code.size(),
                 "pc fell off the end of program '%s'",
                 ctx_->program->name.c_str());
    const std::uint32_t fetch_pc = ctx_->pc;
    const isa::Instruction &inst = ctx_->program->code[fetch_pc];
    const isa::DecodedInst dec =
        (blockCacheEnabled_ && decodedFor_ == ctx_->program)
            ? decoded_.insts[fetch_pc]
            : isa::decodeOne(inst);

    // Gate on the *timed* SPL side before touching the functional
    // side, so the fabric's timed queues advance in lock-step with
    // the functional ones. This is what lets detailed and warming
    // cores coexist during the drain transition: a warming core's
    // timed bar()/load() calls are what eventually make a detailed
    // core's outputReady() fire, and vice versa.
    switch (dec.cls) {
      case OpClass::SplLoad:
      case OpClass::SplLoadMem:
        if (!spl_->canLoad(splSlot_))
            return;
        break;
      case OpClass::SplInit:
        if (inst.op == isa::Opcode::SPL_BAR) {
            if (!spl_->canBar(splSlot_))
                return;
        } else {
            if (!spl_->canInit(splSlot_, inst.imm2))
                return;
        }
        break;
      case OpClass::SplStore:
      case OpClass::SplStoreMem:
        if (!spl_->outputReady(splSlot_, now))
            return;
        break;
      default:
        break;
    }

    DynInst d;
    d.si = &inst;
    d.cls = dec.cls;
    d.flags = dec.flags;
    d.pcAddr = codeBase(ctx_->id) + std::uint64_t(fetch_pc) * 8;

    // Exact architectural semantics via the same funcExecute the
    // detailed fetch uses. The timed gate above makes a functional
    // stall (spl_store pop with the timed queue ready) impossible,
    // but stay defensive and just retry next cycle.
    if (!funcExecute(inst, d))
        return;

    // Warm the structures whose state outlives the fast-forward:
    // caches, the branch predictor, and the timed SPL fabric. Cache
    // probes are line-deduplicated: consecutive instructions share an
    // icache line, and strided data walks touch each line several
    // times, so re-probing per access buys no extra warm state (tag
    // content and first-touch recency are what survive into the next
    // detailed window) yet dominates the warming budget. The data
    // memo is MESI-kind-aware — a Write probe covers later reads and
    // writes of its line, a Read probe covers only reads, so every
    // state-upgrading access still reaches the hierarchy.
    const std::uint64_t ifetch_line = d.pcAddr & warmILineMask_;
    if (ifetch_line != warmIFetchLine_) {
        mem_->access(id_, d.pcAddr, mem::AccessKind::IFetch, now);
        warmIFetchLine_ = ifetch_line;
    }
    const auto warmData = [&](mem::AccessKind kind) {
        const std::uint64_t line = d.memAddr & warmDLineMask_;
        const bool write = kind != mem::AccessKind::Read;
        // Tag = line address | written-bit (line addresses have the
        // offset bits free).
        std::uint64_t &slot =
            warmDataLine_[(line >> warmDLineShift_) % kWarmDataLines];
        if (slot == (line | 1) || (!write && slot == line))
            return;
        mem_->access(id_, d.memAddr, kind, now);
        slot = line | (write ? 1 : 0);
    };
    switch (dec.cls) {
      case OpClass::Load:
      case OpClass::SplLoadMem:
        warmData(mem::AccessKind::Read);
        break;
      case OpClass::Store:
      case OpClass::SplStoreMem:
        warmData(mem::AccessKind::Write);
        break;
      case OpClass::Amo:
        warmData(mem::AccessKind::Amo);
        break;
      default:
        break;
    }

    if (dec.flags & isa::kIsBranch) {
        // Train direction tables, history and BTB; no predict() call
        // — its tables are read-only at lookup, so warming state
        // gains nothing from paying for a discarded prediction.
        const bool taken = (ctx_->pc != fetch_pc + 1);
        const std::uint64_t target =
            codeBase(ctx_->id) + std::uint64_t(ctx_->pc) * 8;
        bpred_.update(d.pcAddr, taken, target);
    }

    // Timed SPL actions, mirroring what commit/issue would have done
    // (gated above, so none of these can stall here), plus the same
    // per-class commit counters the detailed pipeline maintains.
    switch (dec.cls) {
      case OpClass::SplLoad:
        spl_->load(splSlot_, static_cast<unsigned>(inst.imm),
                   static_cast<std::int32_t>(d.splLoadValue));
        ++committedSplOps;
        break;
      case OpClass::SplLoadMem:
        spl_->load(splSlot_, static_cast<unsigned>(inst.imm2),
                   static_cast<std::int32_t>(d.splLoadValue));
        ++committedSplOps;
        ++committedLoads;
        break;
      case OpClass::SplInit:
        if (inst.op == isa::Opcode::SPL_BAR) {
            spl_->bar(splSlot_, static_cast<ConfigId>(inst.imm),
                      static_cast<std::uint32_t>(inst.imm2), now);
        } else {
            spl_->init(splSlot_, static_cast<ConfigId>(inst.imm),
                       inst.imm2, now);
        }
        ++committedSplOps;
        break;
      case OpClass::SplStore:
      case OpClass::SplStoreMem: {
        const std::int32_t timed = spl_->popOutput(splSlot_, now);
        REMAP_ASSERT(timed == d.splValue,
                     "timed/functional SPL value mismatch "
                     "(%d vs %d)", timed, d.splValue);
        ++committedSplOps;
        if (dec.cls == OpClass::SplStoreMem)
            ++committedStores;
        break;
      }
      case OpClass::SplCfg:
        ++committedSplOps;
        break;
      case OpClass::Load:
        ++committedLoads;
        break;
      case OpClass::Store:
        ++committedStores;
        break;
      case OpClass::Amo:
        ++committedLoads;
        ++committedStores;
        break;
      case OpClass::Branch:
        ++committedBranches;
        break;
      case OpClass::FpAlu:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        ++committedFpOps;
        break;
      case OpClass::Halt:
        ctx_->halted = true;
        fetchHalted_ = true;
        ++committedIntOps;
        break;
      default:
        ++committedIntOps;
        break;
    }
    ++committedInsts;
    ++fetchedInsts;
    ++warmedInsts_;
}

Cycle
OooCore::warmBurst(Cycle now, Cycle max_cycles)
{
    // The tight-loop sibling of warmTick(): same per-instruction
    // effects (funcExecute, line-deduplicated cache probes, predictor
    // training, commit counters), minus the chip tick loop between
    // instructions. The caller (System::runSampled) only bursts when
    // every live core is warming, the fabrics are idle and no barrier
    // is pending, and the loop below returns before any SPL-class
    // instruction, so nothing a burst executes can observe another
    // core mid-burst except through the memory hierarchy — whose
    // warming content is order-insensitive at this granularity.
    tickProgress_ = true;
    stallMask_ = 0;
    if (done() || !ctx_ || ctx_->halted)
        return 0;

    using isa::OpClass;
    const auto &code = ctx_->program->code;
    const bool use_table =
        blockCacheEnabled_ && decodedFor_ == ctx_->program;
    const std::uint64_t code_base = codeBase(ctx_->id);
    const auto warmData = [&](Addr addr, mem::AccessKind kind,
                              Cycle at) {
        const std::uint64_t line = addr & warmDLineMask_;
        const bool write = kind != mem::AccessKind::Read;
        std::uint64_t &slot =
            warmDataLine_[(line >> warmDLineShift_) % kWarmDataLines];
        if (slot == (line | 1) || (!write && slot == line))
            return;
        mem_->access(id_, addr, kind, at);
        slot = line | (write ? 1 : 0);
    };

    // One DynInst reused across the burst: the per-iteration fields
    // (si/cls/flags/pcAddr) are rewritten every instruction, and the
    // remaining fields are only read in cases where funcExecute just
    // wrote them (memAddr for Load/Store/Amo), so skipping the ~2
    // cache lines of zero-initialization per instruction is safe.
    DynInst d;
    Cycle c = 0;
    while (c < max_cycles) {
        REMAP_ASSERT(ctx_->pc < code.size(),
                     "pc fell off the end of program '%s'",
                     ctx_->program->name.c_str());
        const std::uint32_t fetch_pc = ctx_->pc;
        const isa::Instruction &inst = code[fetch_pc];
        const isa::DecodedInst dec = use_table
                                         ? decoded_.insts[fetch_pc]
                                         : isa::decodeOne(inst);
        switch (dec.cls) {
          case OpClass::SplLoad:
          case OpClass::SplLoadMem:
          case OpClass::SplInit:
          case OpClass::SplStore:
          case OpClass::SplStoreMem:
            return c; // cross-core interaction: lock-step only
          default:
            break;
        }

        d.si = &inst;
        d.cls = dec.cls;
        d.flags = dec.flags;
        d.pcAddr = code_base + std::uint64_t(fetch_pc) * 8;
        if (!funcExecute(inst, d))
            return c; // defensive; non-SPL execution cannot stall
        ++activeCycles;

        const std::uint64_t ifetch_line = d.pcAddr & warmILineMask_;
        if (ifetch_line != warmIFetchLine_) {
            mem_->access(id_, d.pcAddr, mem::AccessKind::IFetch,
                         now + c);
            warmIFetchLine_ = ifetch_line;
        }
        switch (dec.cls) {
          case OpClass::Load:
            warmData(d.memAddr, mem::AccessKind::Read, now + c);
            ++committedLoads;
            break;
          case OpClass::Store:
            warmData(d.memAddr, mem::AccessKind::Write, now + c);
            ++committedStores;
            break;
          case OpClass::Amo:
            warmData(d.memAddr, mem::AccessKind::Amo, now + c);
            ++committedLoads;
            ++committedStores;
            break;
          case OpClass::Branch:
            ++committedBranches;
            break;
          case OpClass::FpAlu:
          case OpClass::FpMult:
          case OpClass::FpDiv:
            ++committedFpOps;
            break;
          case OpClass::SplCfg:
            ++committedSplOps;
            break;
          case OpClass::Halt:
            ctx_->halted = true;
            fetchHalted_ = true;
            ++committedIntOps;
            break;
          default:
            ++committedIntOps;
            break;
        }
        if (dec.flags & isa::kIsBranch) {
            const bool taken = (ctx_->pc != fetch_pc + 1);
            const std::uint64_t target =
                code_base + std::uint64_t(ctx_->pc) * 8;
            bpred_.update(d.pcAddr, taken, target);
        }
        ++committedInsts;
        ++fetchedInsts;
        ++warmedInsts_;
        ++c;
        if (ctx_->halted)
            break;
    }
    return c;
}

void
OooCore::fetch(Cycle now)
{
    if (!ctx_ || fetchHalted_ || draining_)
        return;
    if (fetchBlockedOnSeq_ != 0 || now < fetchResumeCycle_) {
        ++fetchStallCycles;
        stallMask_ |= kStallFetch;
        return;
    }

    const std::uint64_t base = codeBase(ctx_->id);
    Cycle icache_ready = 0;
    bool accessed_icache = false;
    bool icache_pure_hit = false;

    const isa::Instruction *code = ctx_->program->code.data();
    // With the block cache on, fetch reads pre-decoded metadata and
    // steps fused straight-line runs; with it off (or after a bind
    // the table missed), every instruction is re-decoded on the spot
    // through the same decodeOne(), so the two paths cannot disagree.
    const isa::DecodedInst *table =
        (blockCacheEnabled_ && decodedFor_ == ctx_->program)
            ? decoded_.insts.data()
            : nullptr;

    unsigned n = 0;
    while (n < params_.fetchWidth) {
        if (fb_.size() >= params_.fetchBufferEntries)
            break;
        REMAP_ASSERT(ctx_->pc < ctx_->program->code.size(),
                     "pc fell off the end of program '%s'",
                     ctx_->program->name.c_str());

        // Fused run stepping: every instruction strictly before its
        // run's terminator is *simple* — it falls through, cannot
        // stall in funcExecute and needs no predictor or HALT
        // handling — so fetch those with the minimal per-inst work.
        // Kept off while a tracer is attached: the spl-stall span
        // bookkeeping lives on the generic path below.
        if (table && !tracer_) {
            const unsigned fused_before = n;
            const std::uint32_t term = decoded_.runEnd[ctx_->pc] - 1;
#if REMAP_CORE_HAVE_THREADED
            if (threadedEnabled_) {
                // Threaded-code tier: one computed-goto dispatch per
                // instruction, no funcExecute re-entry (DESIGN.md
                // §14); bodies come from the same X-macro as the
                // switch path below, so REMAP_NO_THREADED=1 is
                // bit-identical by construction.
                n = fetchRunThreaded(code, table, base, term, now, n,
                                     icache_ready, accessed_icache,
                                     icache_pure_hit);
            } else
#endif
            while (ctx_->pc < term && n < params_.fetchWidth &&
                   fb_.size() < params_.fetchBufferEntries) {
                const std::uint32_t pc = ctx_->pc;
                const isa::Instruction &inst = code[pc];
                const isa::DecodedInst &dec = table[pc];

                DynInst d;
                d.si = &inst;
                d.cls = dec.cls;
                d.flags = dec.flags;
                d.pcAddr = base + std::uint64_t(pc) * 8;
                d.usesFpQueue =
                    (dec.flags & isa::kUsesFpQueue) != 0;

                if (!accessed_icache) {
                    const std::uint64_t misses_before =
                        mem_->l1iMisses(id_);
                    icache_ready =
                        mem_->access(id_, d.pcAddr,
                                     mem::AccessKind::IFetch, now);
                    accessed_icache = true;
                    icache_pure_hit =
                        mem_->l1iMisses(id_) == misses_before;
                    if (!icache_pure_hit)
                        tickProgress_ = true;
                }

                const bool ok = funcExecute(inst, d);
                REMAP_ASSERT(ok,
                             "simple instruction stalled in '%s'",
                             ctx_->program->name.c_str());
                d.seq = nextSeq_++;
                d.fbReady = std::max(icache_ready, now + 1);
                ++fetchedInsts;
                tickProgress_ = true;
                fb_.push_back(d);
                ++n;
            }
            if (n > fused_before) {
                ++blockFusedRuns;
                blockFusedInsts += n - fused_before;
            }
            if (n >= params_.fetchWidth ||
                fb_.size() >= params_.fetchBufferEntries)
                break;
        }

        // Generic path: one instruction — the run terminator, or
        // every instruction when the table is unavailable.
        const std::uint32_t fetch_pc = ctx_->pc;
        const isa::Instruction &inst = code[fetch_pc];
        const isa::DecodedInst dec =
            table ? table[fetch_pc] : isa::decodeOne(inst);

        DynInst d;
        d.si = &inst;
        d.cls = dec.cls;
        d.flags = dec.flags;
        d.pcAddr = base + std::uint64_t(fetch_pc) * 8;
        d.usesFpQueue = (dec.flags & isa::kUsesFpQueue) != 0;

        if (!accessed_icache) {
            const std::uint64_t misses_before =
                mem_->l1iMisses(id_);
            icache_ready =
                mem_->access(id_, d.pcAddr, mem::AccessKind::IFetch,
                             now);
            accessed_icache = true;
            // A pure L1I hit touches only the hit counter and the LRU
            // stamp — the one repeatable-per-cycle side effect the
            // event-horizon leap is allowed to bulk-replicate.
            icache_pure_hit =
                mem_->l1iMisses(id_) == misses_before;
            if (!icache_pure_hit)
                tickProgress_ = true;
        }

        if (!funcExecute(inst, d)) {
            ++splFetchStalls;
            stallMask_ |= kStallSplFetch;
            stallFetchAddr_ = d.pcAddr;
            if (tracer_ && splFetchStallStart_ == 0)
                splFetchStallStart_ = now;
            break;
        }
        if (tracer_ && splFetchStallStart_ != 0)
            traceEndStall(now, false);
        d.seq = nextSeq_++;
        d.fbReady = std::max(icache_ready, now + 1);
        ++fetchedInsts;
        ++blockGenericInsts;
        tickProgress_ = true;
        fb_.push_back(d);
        ++n;

        if (dec.flags & isa::kIsBranch) {
            const bool taken = (ctx_->pc != fetch_pc + 1);
            const std::uint64_t target =
                base + std::uint64_t(ctx_->pc) * 8;
            bool btb_hit = false;
            const bool pred = bpred_.predict(d.pcAddr, &btb_hit);
            bpred_.update(d.pcAddr, taken, target);
            if (!(dec.flags & isa::kIsJump) && pred != taken) {
                fb_.back().mispredicted = true;
                ++mispredicts;
                fetchBlockedOnSeq_ = d.seq;
                break;
            }
            if (taken) {
                if (!btb_hit)
                    fetchResumeCycle_ = now + params_.btbMissPenalty;
                break; // a taken branch ends the fetch group
            }
        }
        if (inst.op == isa::Opcode::HALT) {
            fetchHalted_ = true;
            break;
        }
    }
}

void
OooCore::dispatch(Cycle now)
{
    for (unsigned n = 0; n < params_.renameWidth && !fb_.empty();
         ++n) {
        DynInst &d = fb_.front();
        if (d.fbReady > now)
            break;
        if (rob_.size() >= params_.robEntries) {
            ++robFullStalls;
            stallMask_ |= kStallRobFull;
            break;
        }
        unsigned &queue_occ =
            d.usesFpQueue ? fpQueueOcc_ : intQueueOcc_;
        const unsigned queue_cap = d.usesFpQueue
                                       ? params_.fpQueueEntries
                                       : params_.intQueueEntries;
        if (queue_occ >= queue_cap) {
            ++iqFullStalls;
            stallMask_ |= kStallIqFull;
            break;
        }
        const bool is_load = (d.flags & isa::kLsqLoad) != 0;
        const bool is_store = (d.flags & isa::kLsqStore) != 0;
        if (is_load && loadQueueOcc_ >= params_.loadQueueEntries) {
            ++lsqFullStalls;
            stallMask_ |= kStallLsqFull;
            break;
        }
        if (is_store && storeQueueOcc_ >= params_.storeQueueEntries) {
            ++lsqFullStalls;
            stallMask_ |= kStallLsqFull;
            break;
        }

        // Rename: look up producers, then publish this instruction.
        d.dep1 = 0;
        d.dep2 = 0;
        if (d.flags & isa::kReadsIntRs1)
            d.dep1 = producerOf(false, d.si->rs1);
        else if (d.flags & isa::kReadsFpRs1)
            d.dep1 = producerOf(true, d.si->rs1);
        if (d.flags & isa::kReadsIntRs2)
            d.dep2 = producerOf(false, d.si->rs2);
        else if (d.flags & isa::kReadsFpRs2)
            d.dep2 = producerOf(true, d.si->rs2);

        d.stage = Stage::Dispatched;
        ++queue_occ;
        if (is_load)
            ++loadQueueOcc_;
        if (is_store)
            ++storeQueueOcc_;
        tickProgress_ = true;
        rob_.push_back(d);
        recordProducer(rob_.back());
        fb_.pop_front();
    }
}

void
OooCore::issue(Cycle now)
{
    // The queue occupancies count exactly the Dispatched-stage ROB
    // entries; with none, the walk below is a no-op (its ordering
    // flags are only consumed by issue attempts).
    if (intQueueOcc_ + fpQueueOcc_ == 0)
        return;
    unsigned issued = 0;
    unsigned int_alus = params_.intAlus;
    unsigned fp_alus = params_.fpAlus;
    unsigned branch_units = params_.branchUnits;
    unsigned ldst_units = params_.ldStUnits;
    bool saw_unissued_spl_store = false;
    bool saw_older_store_or_fence = false;

    // Advance the skip hint over newly skippable entries (see the
    // member comment for why skippability is monotone), then walk
    // only while Dispatched entries remain ahead: `remaining` is
    // exactly the queue occupancy, and once the last Dispatched entry
    // has been visited the rest of the walk could only have updated
    // ordering flags nothing reads.
    const std::size_t sz = rob_.size();
    std::size_t i = issueSkip_;
    while (i < sz) {
        const DynInst &s = rob_[i];
        if (s.stage == Stage::Completed ||
            (s.stage == Stage::Issued &&
             !(s.flags & isa::kStoreLike)))
            ++i;
        else
            break;
    }
    issueSkip_ = i;
    robIssueSkips += issueSkip_;
    unsigned remaining = intQueueOcc_ + fpQueueOcc_;

    for (; i < sz && remaining != 0; ++i) {
        DynInst &d = rob_[i];
        if (issued >= params_.issueWidth)
            break;
        const isa::OpClass cls = d.cls;
        const bool is_store_like = (d.flags & isa::kStoreLike) != 0;
        const bool is_spl_pop = (d.flags & isa::kSplPop) != 0;

        if (d.stage != Stage::Dispatched) {
            if (is_store_like && d.stage != Stage::Completed)
                saw_older_store_or_fence = true;
            if (is_spl_pop && d.stage == Stage::Dispatched)
                saw_unissued_spl_store = true;
            continue;
        }
        --remaining;

        if (!operandsReady(d, now)) {
            if (is_store_like)
                saw_older_store_or_fence = true;
            if (is_spl_pop)
                saw_unissued_spl_store = true;
            continue;
        }

        Cycle complete = 0;
        bool can_issue = true;
        switch (cls) {
          case isa::OpClass::IntAlu:
          case isa::OpClass::SplLoad:
          case isa::OpClass::SplInit:
          case isa::OpClass::SplCfg:
          case isa::OpClass::Halt:
            if (int_alus == 0) { can_issue = false; break; }
            --int_alus;
            complete = now + opLatency(cls);
            break;
          case isa::OpClass::IntMult:
            if (int_alus == 0) { can_issue = false; break; }
            --int_alus;
            complete = now + opLatency(cls);
            break;
          case isa::OpClass::IntDiv:
            if (int_alus == 0 || divBusyUntil_ > now) {
                can_issue = false;
                break;
            }
            --int_alus;
            complete = now + opLatency(cls);
            divBusyUntil_ = complete;
            break;
          case isa::OpClass::FpAlu:
          case isa::OpClass::FpMult:
            if (fp_alus == 0) { can_issue = false; break; }
            --fp_alus;
            complete = now + opLatency(cls);
            break;
          case isa::OpClass::FpDiv:
            if (fp_alus == 0 || fpDivBusyUntil_ > now) {
                can_issue = false;
                break;
            }
            --fp_alus;
            complete = now + opLatency(cls);
            fpDivBusyUntil_ = complete;
            break;
          case isa::OpClass::Branch:
            if (branch_units == 0) { can_issue = false; break; }
            --branch_units;
            complete = now + opLatency(cls);
            break;
          case isa::OpClass::Store:
          case isa::OpClass::Fence:
            if (ldst_units == 0) { can_issue = false; break; }
            --ldst_units;
            complete = now + opLatency(cls);
            break;
          case isa::OpClass::Load:
          case isa::OpClass::SplLoadMem: {
            if (ldst_units == 0) { can_issue = false; break; }
            // Store-to-load: check older overlapping stores.
            bool forwarded = false;
            bool blocked = false;
            for (const DynInst &s : rob_) {
                if (s.seq >= d.seq)
                    break;
                if (!(s.flags & isa::kMemWrite))
                    continue;
                const bool overlap =
                    s.memAddr < d.memAddr + d.memLen &&
                    d.memAddr < s.memAddr + s.memLen;
                if (!overlap)
                    continue;
                if (s.stage == Stage::Completed &&
                    s.completeCycle <= now) {
                    forwarded = true; // forward from the store queue
                } else {
                    blocked = true;   // data not ready yet
                    break;
                }
            }
            if (blocked) { can_issue = false; break; }
            --ldst_units;
            if (forwarded)
                complete = now + 2;
            else
                complete = mem_->access(id_, d.memAddr,
                                        mem::AccessKind::Read, now);
            break;
          }
          case isa::OpClass::Amo:
            // Atomics issue non-speculatively: wait for every older
            // store/fence to complete first.
            if (ldst_units == 0 || saw_older_store_or_fence) {
                can_issue = false;
                break;
            }
            --ldst_units;
            complete = mem_->access(id_, d.memAddr,
                                    mem::AccessKind::Amo, now);
            break;
          case isa::OpClass::SplStore:
          case isa::OpClass::SplStoreMem: {
            if (ldst_units == 0 || saw_unissued_spl_store) {
                can_issue = false;
                break;
            }
            if (!spl_->outputReady(splSlot_, now)) {
                can_issue = false;
                saw_unissued_spl_store = true;
                break;
            }
            --ldst_units;
            const std::int32_t timed = spl_->popOutput(splSlot_, now);
            REMAP_ASSERT(timed == d.splValue,
                         "timed/functional SPL value mismatch "
                         "(%d vs %d)", timed, d.splValue);
            complete = now + opLatency(cls);
            break;
          }
        }

        if (is_store_like && d.stage != Stage::Completed)
            saw_older_store_or_fence = true;
        if (!can_issue)
            continue;

        d.stage = Stage::Issued;
        d.completeCycle = complete;
        minIssuedComplete_ = std::min(minIssuedComplete_, complete);
        tickProgress_ = true;
        ++issuedOcc_;
        if (d.usesFpQueue)
            --fpQueueOcc_;
        else
            --intQueueOcc_;
        ++issued;
    }
}

void
OooCore::writeback(Cycle now)
{
    // minIssuedComplete_ is the exact minimum completeCycle over
    // Issued entries, so when it lies in the future the walk below
    // would transition nothing — skip it. The walk recomputes the
    // minimum over the entries it leaves Issued.
    if (issuedOcc_ == 0 || minIssuedComplete_ > now)
        return;
    Cycle new_min = neverCycle;
    // Leading Completed entries have nothing left to write back —
    // skip them via the monotone hint, and stop as soon as the last
    // Issued entry (counted exactly by issuedOcc_) has been seen.
    const std::size_t sz = rob_.size();
    std::size_t i = wbSkip_;
    while (i < sz && rob_[i].stage == Stage::Completed)
        ++i;
    wbSkip_ = i;
    robWbSkips += wbSkip_;
    unsigned remaining = issuedOcc_;
    for (; i < sz; ++i) {
        DynInst &d = rob_[i];
        if (d.stage != Stage::Issued)
            continue;
        if (d.completeCycle <= now) {
            d.stage = Stage::Completed;
            --issuedOcc_;
            tickProgress_ = true;
            if (d.seq == fetchBlockedOnSeq_) {
                fetchBlockedOnSeq_ = 0;
                fetchResumeCycle_ = std::max(
                    fetchResumeCycle_,
                    d.completeCycle + params_.redirectPenalty);
            }
        } else {
            new_min = std::min(new_min, d.completeCycle);
        }
        if (--remaining == 0)
            break;
    }
    minIssuedComplete_ = new_min;
}

void
OooCore::commit(Cycle now)
{
    std::size_t pops = 0;
    for (unsigned n = 0; n < params_.retireWidth && !rob_.empty();
         ++n) {
        DynInst &d = rob_.front();
        if (d.stage != Stage::Completed || d.completeCycle > now)
            break;
        const isa::OpClass cls = d.cls;

        switch (cls) {
          case isa::OpClass::Store: {
            Cycle wb = mem_->access(id_, d.memAddr,
                                    mem::AccessKind::Write, now);
            storeBufferDrainCycle_ =
                std::max(storeBufferDrainCycle_, wb);
            --storeQueueOcc_;
            ++committedStores;
            break;
          }
          case isa::OpClass::Fence:
            if (storeBufferDrainCycle_ > now)
                goto commit_stalled;
            ++committedIntOps;
            break;
          case isa::OpClass::Load:
            --loadQueueOcc_;
            ++committedLoads;
            break;
          case isa::OpClass::Amo:
            --loadQueueOcc_;
            ++committedLoads;
            ++committedStores;
            break;
          case isa::OpClass::SplLoad:
            if (!spl_->canLoad(splSlot_)) {
                ++splCommitStalls;
                stallMask_ |= kStallSplCommit;
                if (tracer_ && splCommitStallStart_ == 0)
                    splCommitStallStart_ = now;
                goto commit_stalled;
            }
            spl_->load(splSlot_,
                       static_cast<unsigned>(d.si->imm),
                       static_cast<std::int32_t>(d.splLoadValue));
            ++committedSplOps;
            break;
          case isa::OpClass::SplLoadMem:
            if (!spl_->canLoad(splSlot_)) {
                ++splCommitStalls;
                stallMask_ |= kStallSplCommit;
                if (tracer_ && splCommitStallStart_ == 0)
                    splCommitStallStart_ = now;
                goto commit_stalled;
            }
            spl_->load(splSlot_,
                       static_cast<unsigned>(d.si->imm2),
                       static_cast<std::int32_t>(d.splLoadValue));
            --loadQueueOcc_;
            ++committedSplOps;
            ++committedLoads;
            break;
          case isa::OpClass::SplStoreMem: {
            Cycle wb = mem_->access(id_, d.memAddr,
                                    mem::AccessKind::Write, now);
            storeBufferDrainCycle_ =
                std::max(storeBufferDrainCycle_, wb);
            --storeQueueOcc_;
            ++committedSplOps;
            ++committedStores;
            break;
          }
          case isa::OpClass::SplInit:
            if (d.si->op == isa::Opcode::SPL_BAR) {
                if (!spl_->canBar(splSlot_)) {
                    ++splCommitStalls;
                    stallMask_ |= kStallSplCommit;
                    if (tracer_ && splCommitStallStart_ == 0)
                        splCommitStallStart_ = now;
                    goto commit_stalled;
                }
                spl_->bar(splSlot_,
                          static_cast<ConfigId>(d.si->imm),
                          static_cast<std::uint32_t>(d.si->imm2),
                          now);
            } else {
                if (!spl_->canInit(splSlot_, d.si->imm2)) {
                    ++splCommitStalls;
                    stallMask_ |= kStallSplCommit;
                    if (tracer_ && splCommitStallStart_ == 0)
                        splCommitStallStart_ = now;
                    goto commit_stalled;
                }
                spl_->init(splSlot_,
                           static_cast<ConfigId>(d.si->imm),
                           d.si->imm2, now);
            }
            ++committedSplOps;
            break;
          case isa::OpClass::SplStore:
          case isa::OpClass::SplCfg:
            ++committedSplOps;
            break;
          case isa::OpClass::Branch:
            ++committedBranches;
            break;
          case isa::OpClass::FpAlu:
          case isa::OpClass::FpMult:
          case isa::OpClass::FpDiv:
            ++committedFpOps;
            break;
          case isa::OpClass::Halt:
            ctx_->halted = true;
            ++committedIntOps;
            break;
          default:
            ++committedIntOps;
            break;
        }

        if (tracer_ && splCommitStallStart_ != 0)
            traceEndStall(now, true);
        ++committedInsts;
        if (trace_) {
            *trace_ << now << " core" << id_ << " pc=0x" << std::hex
                    << d.pcAddr << std::dec << ": "
                    << isa::disassemble(*d.si) << '\n';
        }
        tickProgress_ = true;
        rob_.pop_front();
        ++pops;
    }
  commit_stalled:
    // Keep the walk-skip hints pointing at the same entries now that
    // the ROB head has moved.
    wbSkip_ -= std::min(wbSkip_, pops);
    issueSkip_ -= std::min(issueSkip_, pops);
}

void
OooCore::tick(Cycle now)
{
    if (!ctx_)
        return;
    if (warming_) {
        warmTick(now);
        return;
    }
    if (profiler_) {
        tickProfiled(now);
        return;
    }
    tickProgress_ = false;
    stallMask_ = 0;
    if (!done())
        ++activeCycles;
    commit(now);
    writeback(now);
    issue(now);
    dispatch(now);
    fetch(now);
}

void
OooCore::tickProfiled(Cycle now)
{
    // Same stage sequence as tick(), bracketed by host-clock reads.
    // Three chained timestamps cover the five stages: commit and
    // writeback walk the same ROB tail, issue and dispatch share the
    // window, fetch stands alone — matching the profiler's
    // WritebackCommit / IssueExecute / FetchDecode taxonomy.
    tickProgress_ = false;
    stallMask_ = 0;
    if (!done())
        ++activeCycles;
    const std::uint64_t t0 = prof::nowNs();
    commit(now);
    writeback(now);
    const std::uint64_t t1 = prof::nowNs();
    issue(now);
    dispatch(now);
    const std::uint64_t t2 = prof::nowNs();
    fetch(now);
    const std::uint64_t t3 = prof::nowNs();
    profiler_->record(prof::Phase::WritebackCommit, t1 - t0);
    profiler_->record(prof::Phase::IssueExecute, t2 - t1);
    profiler_->record(prof::Phase::FetchDecode, t3 - t2);
}

Cycle
OooCore::nextEventCycle(Cycle now) const
{
    if (!ctx_ || done())
        return neverCycle;
    Cycle next = neverCycle;
    auto consider = [&](Cycle c) {
        if (c > now && c < next)
            next = c;
    };
    // Every `now`-comparison in the tick is against one of these
    // thresholds; anything <= now keeps its truth value as now grows,
    // so a quiet tick stays quiet until the earliest of them.
    consider(fetchResumeCycle_);
    consider(divBusyUntil_);
    consider(fpDivBusyUntil_);
    consider(storeBufferDrainCycle_);
    if (!fb_.empty())
        consider(fb_.front().fbReady);
    // Exact minimum over Issued completions (maintained by issue/
    // writeback), equal to what walking the ROB would find: after a
    // quiet tick every Issued completion is > now, so the minimum is
    // the only one that can win.
    consider(minIssuedComplete_);
    if (spl_)
        consider(spl_->outputHeadReadyCycle(splSlot_));
    return next;
}

void
OooCore::accountSkippedStallCycles(Cycle n)
{
    if (n == 0 || !ctx_ || done())
        return;
    activeCycles += n;
    if (stallMask_ & kStallFetch)
        fetchStallCycles += n;
    if (stallMask_ & kStallSplFetch) {
        splFetchStalls += n;
        // The stalled spl_store re-probes its own icache line every
        // cycle; replicate those guaranteed-pure hits in bulk so the
        // cache hit counters and LRU clock match the per-cycle loop.
        mem_->accountRepeatedIFetchHits(id_, stallFetchAddr_, n);
    }
    if (stallMask_ & kStallSplCommit)
        splCommitStalls += n;
    if (stallMask_ & kStallRobFull)
        robFullStalls += n;
    if (stallMask_ & kStallIqFull)
        iqFullStalls += n;
    if (stallMask_ & kStallLsqFull)
        lsqFullStalls += n;
}

void
OooCore::dumpStats(std::ostream &os)
{
    statGroup_.dump(os);
}

void
OooCore::dumpStatsJson(json::Writer &w)
{
    statGroup_.dumpJson(w);
}

void
OooCore::dumpMetaStatsJson(json::Writer &w)
{
    metaGroup_.dumpJson(w);
}

void
OooCore::resetStats()
{
    statGroup_.reset();
    metaGroup_.reset();
}

void
OooCore::save(snap::Serializer &s) const
{
    s.section("core");
    s.u32(id_);
    s.boolean(ctx_ != nullptr);

    // DynInst::si points into the bound program's code; serialize it
    // as an instruction index so restore can re-resolve the pointer.
    auto save_inst = [&](const DynInst &d) {
        std::uint32_t si_idx = ~std::uint32_t{0};
        if (d.si) {
            si_idx = static_cast<std::uint32_t>(
                d.si - ctx_->program->code.data());
        }
        s.u32(si_idx);
        s.u64(d.seq);
        s.u64(d.pcAddr);
        s.u8(static_cast<std::uint8_t>(d.stage));
        s.u64(d.fbReady);
        s.u64(d.completeCycle);
        s.u64(d.dep1);
        s.u64(d.dep2);
        s.u64(d.memAddr);
        s.u32(d.memLen);
        s.i64(d.storeValue);
        s.i32(d.splValue);
        s.i64(d.splLoadValue);
        s.boolean(d.mispredicted);
        s.boolean(d.usesFpQueue);
    };
    s.u32(static_cast<std::uint32_t>(fb_.size()));
    for (const DynInst &d : fb_)
        save_inst(d);
    s.u32(static_cast<std::uint32_t>(rob_.size()));
    for (const DynInst &d : rob_)
        save_inst(d);

    s.u64(nextSeq_);
    for (std::uint64_t p : intProducer_)
        s.u64(p);
    for (std::uint64_t p : fpProducer_)
        s.u64(p);
    s.u32(intQueueOcc_);
    s.u32(fpQueueOcc_);
    s.u32(loadQueueOcc_);
    s.u32(storeQueueOcc_);
    s.u64(fetchResumeCycle_);
    s.u64(fetchBlockedOnSeq_);
    s.boolean(fetchHalted_);
    s.boolean(draining_);
    s.u64(divBusyUntil_);
    s.u64(fpDivBusyUntil_);
    s.u64(storeBufferDrainCycle_);
    s.boolean(warming_);
    s.u64(warmedInsts_);
    s.u64(warmIFetchLine_);
    for (const std::uint64_t l : warmDataLine_)
        s.u64(l);

    bpred_.save(s);
    statGroup_.save(s);
}

void
OooCore::restore(snap::Deserializer &d)
{
    if (!d.section("core"))
        return;
    if (d.u32() != id_) {
        d.fail("core id mismatch");
        return;
    }
    const bool had_thread = d.boolean();
    if (had_thread != (ctx_ != nullptr)) {
        d.fail("thread binding mismatch");
        return;
    }

    auto restore_insts = [&](BoundedRing<DynInst> &q,
                             std::size_t elem_bytes) {
        q.clear();
        const std::uint32_t n = d.count(elem_bytes);
        if (n > q.capacity()) {
            d.fail("pipeline queue exceeds configured capacity");
            return;
        }
        for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
            DynInst di;
            const std::uint32_t si_idx = d.u32();
            if (si_idx != ~std::uint32_t{0}) {
                if (!ctx_ || si_idx >= ctx_->program->code.size()) {
                    d.fail("instruction index out of range");
                    return;
                }
                di.si = &ctx_->program->code[si_idx];
                // Derived decode metadata is rebuilt, not restored;
                // decodeOne() is the same function the fetch paths
                // use, so restored entries match freshly fetched
                // ones bit for bit.
                const isa::DecodedInst dec = isa::decodeOne(*di.si);
                di.cls = dec.cls;
                di.flags = dec.flags;
            }
            di.seq = d.u64();
            di.pcAddr = d.u64();
            const std::uint8_t stage = d.u8();
            if (stage > static_cast<std::uint8_t>(Stage::Completed)) {
                d.fail("bad pipeline stage");
                return;
            }
            di.stage = static_cast<Stage>(stage);
            di.fbReady = d.u64();
            di.completeCycle = d.u64();
            di.dep1 = d.u64();
            di.dep2 = d.u64();
            di.memAddr = d.u64();
            di.memLen = d.u32();
            di.storeValue = d.i64();
            di.splValue = d.i32();
            di.splLoadValue = d.i64();
            di.mispredicted = d.boolean();
            di.usesFpQueue = d.boolean();
            q.push_back(di);
        }
    };
    // 87 = serialized DynInst size (fixed-width fields above).
    restore_insts(fb_, 87);
    if (!d.ok())
        return;
    restore_insts(rob_, 87);
    if (!d.ok())
        return;
    issuedOcc_ = 0;
    minIssuedComplete_ = neverCycle;
    wbSkip_ = 0;
    issueSkip_ = 0;
    for (const DynInst &di : rob_) {
        if (di.stage == Stage::Issued) {
            ++issuedOcc_;
            minIssuedComplete_ =
                std::min(minIssuedComplete_, di.completeCycle);
        }
    }

    nextSeq_ = d.u64();
    for (std::uint64_t &p : intProducer_)
        p = d.u64();
    for (std::uint64_t &p : fpProducer_)
        p = d.u64();
    intQueueOcc_ = d.u32();
    fpQueueOcc_ = d.u32();
    loadQueueOcc_ = d.u32();
    storeQueueOcc_ = d.u32();
    fetchResumeCycle_ = d.u64();
    fetchBlockedOnSeq_ = d.u64();
    fetchHalted_ = d.boolean();
    draining_ = d.boolean();
    divBusyUntil_ = d.u64();
    fpDivBusyUntil_ = d.u64();
    storeBufferDrainCycle_ = d.u64();
    warming_ = d.boolean();
    warmedInsts_ = d.u64();
    warmIFetchLine_ = d.u64();
    for (std::uint64_t &l : warmDataLine_)
        l = d.u64();

    bpred_.restore(d);
    statGroup_.restore(d);

    // System::restore only rebinds threads when the binding changed,
    // so the decoded-program table must be refreshed here as well —
    // a restored core may run immediately without a bindThread().
    rebuildDecoded();
}

} // namespace remap::cpu
