/**
 * @file
 * ThreadContext — the architectural state of one software thread:
 * program, PC, integer and FP register files, plus identity used by
 * the SPL thread-to-core and barrier tables.
 */

#ifndef REMAP_CPU_THREAD_HH
#define REMAP_CPU_THREAD_HH

#include <array>
#include <cstdint>

#include "isa/isa.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace remap::cpu
{

/** Architectural state of one thread. */
struct ThreadContext
{
    ThreadId id = 0;
    AppId app = 0;
    const isa::Program *program = nullptr;
    std::uint32_t pc = 0;
    bool halted = false;

    /** Integer register file; x0 must stay zero. */
    std::array<std::int64_t, isa::numIntRegs> intRegs{};
    /** FP register file (doubles). */
    std::array<double, isa::numFpRegs> fpRegs{};

    /** Read integer register (x0 reads zero). */
    std::int64_t
    readInt(isa::RegIndex r) const
    {
        return r == 0 ? 0 : intRegs[r];
    }

    /** Write integer register (writes to x0 are dropped). */
    void
    writeInt(isa::RegIndex r, std::int64_t v)
    {
        if (r != 0)
            intRegs[r] = v;
    }

    /** Reset to the start of @p prog with clean registers. */
    void
    reset(const isa::Program *prog)
    {
        program = prog;
        pc = 0;
        halted = false;
        intRegs.fill(0);
        fpRegs.fill(0.0);
    }

    /** Serialize dynamic state; id/app/program are structural and
     *  only written for verification. */
    void
    save(snap::Serializer &s) const
    {
        s.section("thread");
        s.u32(id);
        s.u32(app);
        s.u32(pc);
        s.boolean(halted);
        for (std::int64_t r : intRegs)
            s.i64(r);
        for (double r : fpRegs)
            s.f64(r);
    }

    /** Restore state saved by save() into a structurally identical
     *  thread (same id; program pointer is left untouched). */
    void
    restore(snap::Deserializer &d)
    {
        if (!d.section("thread"))
            return;
        if (d.u32() != id) {
            d.fail("thread id mismatch");
            return;
        }
        app = d.u32();
        pc = d.u32();
        halted = d.boolean();
        for (auto &r : intRegs)
            r = d.i64();
        for (auto &r : fpRegs)
            r = d.f64();
    }
};

} // namespace remap::cpu

#endif // REMAP_CPU_THREAD_HH
