/**
 * @file
 * OooCore — a structure-constrained out-of-order core model.
 *
 * Functional-first ("execute-at-fetch") organization, the standard
 * technique of SESC/SimpleScalar-class simulators: instructions are
 * executed functionally, in program order, when fetched, so every
 * value, branch outcome and memory address is known up front; the
 * pipeline model then determines *when* everything happens, bounded
 * by the Table II structures:
 *
 *  - fetch/decode/rename width, issue/retire width,
 *  - 64-entry ROB, 32/16-entry int/FP issue queues,
 *  - FU counts (int ALU, FP ALU, branch, load/store) and latencies,
 *  - gshare+bimodal hybrid predictor with 512 B BTB — a mispredicted
 *    branch stalls fetch until it resolves plus a redirect penalty,
 *  - loads through the LSQ with store-to-load forwarding; stores and
 *    atomics access the timed MESI hierarchy,
 *  - the SPL extension: spl_load/init/bar act on the fabric at commit
 *    (with queue-full / destination-absent stalls), spl_store waits
 *    in the window until the fabric's timed output queue has data.
 *
 * Because fetch never follows a wrong path, there is no squash logic;
 * misprediction cost appears as fetch-stall cycles, which is the
 * first-order effect the paper's analysis relies on (Section V-B.1
 * discusses misprediction-rate changes between variants).
 */

#ifndef REMAP_CPU_CORE_HH
#define REMAP_CPU_CORE_HH

#include <cstdint>
#include <ostream>
#include <string>

#include "cpu/bpred.hh"
#include "cpu/thread.hh"
#include "isa/decoded.hh"
#include "isa/isa.hh"
#include "mem/mem_system.hh"
#include "mem/memory_image.hh"
#include "sim/bounded_ring.hh"
#include "sim/profile.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "spl/fabric.hh"

namespace remap::cpu
{

/** Core pipeline parameters (Table II). */
struct CoreParams
{
    std::string name = "ooo1";
    unsigned fetchWidth = 2;
    unsigned renameWidth = 2;  ///< decode/rename/dispatch width
    unsigned issueWidth = 1;
    unsigned retireWidth = 1;
    unsigned robEntries = 64;
    unsigned intQueueEntries = 32;
    unsigned fpQueueEntries = 16;
    unsigned loadQueueEntries = 16;
    unsigned storeQueueEntries = 16;
    unsigned fetchBufferEntries = 8;
    unsigned intAlus = 1;
    unsigned fpAlus = 1;
    unsigned branchUnits = 1;
    unsigned ldStUnits = 1;
    /** Extra fetch-redirect cycles after a mispredict resolves. */
    Cycle redirectPenalty = 3;
    /** Front-end bubble for a taken branch missing in the BTB. */
    Cycle btbMissPenalty = 2;
    BPredParams bpred{};

    /** Single-issue OOO1 configuration (Table II, left column). */
    static CoreParams ooo1();
    /** Dual-issue OOO2 configuration (Table II, right column). */
    static CoreParams ooo2();
};

/** One core of the simulated CMP. */
class OooCore
{
  public:
    /**
     * @param id global core id (indexes the MemSystem)
     * @param params pipeline configuration
     * @param mem timing memory hierarchy (not owned)
     * @param image functional memory (not owned)
     */
    OooCore(CoreId id, const CoreParams &params, mem::MemSystem *mem,
            mem::MemoryImage *image);

    /** Attach this core to its cluster fabric as local slot
     *  @p local_slot. Cores without SPL leave this unset. */
    void attachSpl(spl::SplFabric *fabric, unsigned local_slot);

    /** Bind @p ctx to run on this core (pipeline must be drained). */
    void bindThread(ThreadContext *ctx);

    /** The bound thread, or nullptr. */
    ThreadContext *thread() { return ctx_; }

    /** Stop fetching so the pipeline drains (migration support). */
    void requestDrain() { draining_ = true; }
    /** Resume fetching after an abandoned drain. */
    void cancelDrain() { draining_ = false; }
    /** True while a drain request is outstanding. */
    bool draining() const { return draining_; }
    /** True when no instructions remain in flight. */
    bool
    drained() const
    {
        return fb_.empty() && rob_.empty();
    }

    /** @{ @name Functional warming (sampled mode, DESIGN.md §14).
     * While warming, tick() executes at most one instruction per
     * cycle with exact architectural semantics (the same funcExecute
     * the detailed fetch uses) plus cache, branch-predictor and
     * *timed* SPL-fabric side effects — the fabric's timed queues are
     * kept in lock-step with the functional ones so a later detailed
     * window sees consistent state — but no OOO pipeline modelling.
     * Entry requires a drained pipeline; exit is instantaneous (the
     * next detailed warm-up phase refills the pipeline). */
    bool warming() const { return warming_; }
    /** Switch to functional warming (pipeline must be drained). */
    void beginWarming();
    /** Resume detailed execution. */
    void endWarming() { warming_ = false; }
    /** Instructions executed under functional warming (serialized —
     *  the sampled-mode estimator needs it across warm starts). */
    std::uint64_t warmedInsts() const { return warmedInsts_; }
    /**
     * Burst-mode functional warming: commit up to @p max_cycles
     * instructions (one per cycle, the first at @p now) in a tight
     * loop without returning to the chip tick loop, stopping *before*
     * any SPL-class instruction — everything that can interact with
     * another core stays under the cycle-interleaved loop, so bursts
     * only cover private compute (ALU/branch/memory) stretches.
     * Only valid while warming. @return instructions committed
     * (== core cycles consumed; 0 means the core is parked at an SPL
     * instruction, halted, or done).
     */
    Cycle warmBurst(Cycle now, Cycle max_cycles);
    /** @} */
    /** Detach the thread (must be drained); the core goes idle. */
    void unbindThread();
    /** Local SPL slot of this core (valid when a fabric is attached). */
    unsigned splSlot() const { return splSlot_; }
    /** Fabric this core is attached to, or nullptr. */
    spl::SplFabric *splFabric() { return spl_; }

    /** Advance one core cycle. */
    void tick(Cycle now);

    /**
     * True when the most recent tick() changed no state beyond the
     * fixed per-cycle stall signature (stall counters plus, for an
     * spl_store fetch stall, one pure L1I hit). While every component
     * is quiet the whole-chip state is frozen, so the run loop may
     * leap to the next event horizon and bulk-account the signature
     * via accountSkippedStallCycles().
     */
    bool lastTickQuiet() const { return !tickProgress_; }

    /**
     * Earliest cycle strictly after @p now at which this core's tick
     * could behave differently than it did at @p now, assuming no
     * other component acts in between: the minimum over every
     * time-threshold the pipeline compares against `now` (issued
     * instructions' completion, fetch-buffer head readiness, fetch
     * redirect resume, divider and store-buffer busy horizons, the
     * fabric output-queue head). Returns neverCycle when none is
     * pending. Only meaningful after a quiet tick — every comparison
     * with a threshold <= now keeps its truth value as now grows, so
     * the tick replays identically on every skipped cycle.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Bulk-apply the last quiet tick's stall signature @p n more
     * times: the per-cycle stall counters the skipped ticks would
     * have incremented, and the repeated L1I hit an spl_store fetch
     * stall replays each cycle. Bit-identical to ticking @p n times
     * while the chip is frozen.
     */
    void accountSkippedStallCycles(Cycle n);

    /** True when the thread has halted and the pipeline drained. */
    bool done() const;

    /** Global core id. */
    CoreId id() const { return id_; }
    /** Configuration. */
    const CoreParams &params() const { return params_; }
    /** The branch predictor (exposed for stats). */
    BranchPredictor &bpred() { return bpred_; }

    /** @{ @name Statistics (consumed by the power model/harness). */
    StatCounter committedInsts;
    StatCounter committedIntOps;
    StatCounter committedFpOps;
    StatCounter committedLoads;
    StatCounter committedStores;
    StatCounter committedBranches;
    StatCounter committedSplOps;
    StatCounter fetchedInsts;
    StatCounter mispredicts;
    StatCounter robFullStalls;
    StatCounter iqFullStalls;
    StatCounter lsqFullStalls;
    StatCounter splCommitStalls;   ///< spl_init blocked at commit
    StatCounter splFetchStalls;    ///< spl_store value not yet produced
    StatCounter fetchStallCycles;  ///< cycles fetch was blocked
    StatCounter activeCycles;      ///< cycles with a live thread
    /** @} */

    /** @{ @name Fast-path telemetry (meta-stats: describe how the
     * simulator ran, not what the simulated chip did. Registered in
     * metaGroup_, which is never serialized — see dumpMetaStatsJson).
     */
    StatCounter blockFusedInsts;   ///< insts fetched via fused runs
    StatCounter blockFusedRuns;    ///< fused-run activations
    StatCounter blockGenericInsts; ///< insts fetched via generic path
    StatCounter robWbSkips;        ///< ROB entries skipped by writeback
    StatCounter robIssueSkips;     ///< ROB entries skipped by issue
    /** @} */

    /** Dump core + predictor stats. */
    void dumpStats(std::ostream &os);
    /** Emit core + predictor stats into an open JSON object scope. */
    void dumpStatsJson(json::Writer &w);
    /** Emit this core's fast-path meta-stats (block cache, walk-skip
     *  savings) into an open JSON object scope. */
    void dumpMetaStatsJson(json::Writer &w);
    /** Reset all statistics. */
    void resetStats();

    /**
     * Attribute this core's tick phases to @p p (null disables).
     * Observation only — the profiled tick path executes the same
     * stage sequence as the plain one, it just brackets the stages
     * with host-clock reads.
     */
    void setProfiler(prof::Profiler *p) { profiler_ = p; }

    /**
     * Stream committed instructions as text ("cycle core pc: disasm"
     * per line) to @p os; pass nullptr to stop tracing. Intended for
     * debugging kernels, not for measurement runs.
     */
    void setTraceStream(std::ostream *os) { trace_ = os; }

    /**
     * Emit SPL stall spans (commit-side initiation/barrier stalls,
     * fetch-side spl_store stalls) to @p t; this core's events land on
     * track @p tid. Null disables. Observation only: the pipeline is
     * unaffected.
     */
    void setTracer(trace::Tracer *t, std::uint32_t tid);

    /**
     * Serialize the pipeline: fetch buffer and ROB (DynInst::si is
     * written as an index into the bound thread's program), sequence
     * and producer state, queue occupancies, fetch/drain flags, unit
     * busy cycles, the branch predictor and the stat group. The bound
     * thread's ThreadContext is serialized by the System (threads
     * first), not here.
     */
    void save(snap::Serializer &s) const;
    /** Restore into a core whose thread binding already matches the
     *  snapshot (System rebinds before calling this). */
    void restore(snap::Deserializer &d);

  private:
    enum class Stage : std::uint8_t
    {
        InBuffer,   ///< fetched, waiting for dispatch
        Dispatched, ///< in the window, waiting for issue
        Issued,     ///< executing
        Completed,  ///< result available, awaiting commit
    };

    struct DynInst
    {
        const isa::Instruction *si = nullptr;
        /** Cached si->opClass(): derived, hot in every pipeline
         *  stage, recomputed (not serialized) on snapshot restore. */
        isa::OpClass cls = isa::OpClass::IntAlu;
        /** Cached isa::decodeOne(*si).flags: derived like cls and
         *  recomputed (not serialized) on snapshot restore. */
        std::uint16_t flags = 0;
        std::uint64_t seq = 0;
        std::uint64_t pcAddr = 0;
        Stage stage = Stage::InBuffer;
        Cycle fbReady = 0;       ///< earliest dispatch cycle
        Cycle completeCycle = 0;
        std::uint64_t dep1 = 0;  ///< producer seq of source 1 (0=ready)
        std::uint64_t dep2 = 0;  ///< producer seq of source 2
        Addr memAddr = 0;
        unsigned memLen = 0;
        std::int64_t storeValue = 0;
        std::int32_t splValue = 0;   ///< functional spl_store result
        std::int64_t splLoadValue = 0; ///< word staged by spl_load
        bool mispredicted = false;
        bool usesFpQueue = false;
        /**
         * Operand-readiness memo: 0 = unknown (walk the producers),
         * otherwise a proven lower bound on the first cycle the
         * producers could all be complete, so issue() can skip the
         * producer walk until then. Readiness is monotone (producers
         * only ever advance and their completeCycle is fixed once
         * issued), which makes the bound safe to cache. Derived,
         * never serialized; reset on restore.
         */
        Cycle notReadyUntil = 0;
    };

    // Pipeline stages, processed commit-first each tick.
    void commit(Cycle now);
    void writeback(Cycle now);
    void issue(Cycle now);
    void dispatch(Cycle now);
    void fetch(Cycle now);

    /** tick() body with host-time attribution (profiler_ != null). */
    void tickProfiled(Cycle now);

    /** tick() body while functionally warming (warming_ == true):
     *  one instruction per cycle, exact architectural semantics plus
     *  cache / predictor / timed-SPL side effects, no pipeline. */
    void warmTick(Cycle now);

    /**
     * Threaded-code fused-run executor (DESIGN.md §14): steps the
     * same pre-classified simple run the generic fused path in
     * fetch() handles, but dispatches opcode bodies through a
     * computed-goto label table indexed by DecodedInst::handler
     * instead of re-entering funcExecute's switch per instruction.
     * Bodies are instantiated from the same X-macro as funcExecute,
     * so the two paths are bit-identical by construction
     * (REMAP_NO_THREADED=1 selects the switch path at runtime and
     * the differential test crosses both). Returns the updated
     * fetched-this-cycle count.
     */
    unsigned fetchRunThreaded(const isa::Instruction *code,
                              const isa::DecodedInst *table,
                              std::uint64_t base, std::uint32_t term,
                              Cycle now, unsigned n, Cycle &icache_ready,
                              bool &accessed_icache, bool &icache_pure_hit);

    /** Functionally execute @p inst; fills @p d; returns false when
     *  fetch must stall (spl_store with no functional value yet). */
    bool funcExecute(const isa::Instruction &inst, DynInst &d);

    /** True when @p d's producers have completed by @p now; updates
     *  the notReadyUntil memo on @p d. */
    bool operandsReady(DynInst &d, Cycle now);
    /** Find an in-flight instruction by sequence number. */
    const DynInst *findBySeq(std::uint64_t seq) const;

    /** Rebuild the per-core decoded-program table for the bound
     *  thread's program (no-op when the block cache is disabled). */
    void rebuildDecoded();

    /** Record @p d as the latest producer of its destination. */
    void recordProducer(const DynInst &d);
    /** Producer seq for a source register, 0 when ready. */
    std::uint64_t producerOf(bool fp, isa::RegIndex r) const;

    CoreId id_;
    CoreParams params_;
    mem::MemSystem *mem_;
    mem::MemoryImage *image_;
    spl::SplFabric *spl_ = nullptr;
    unsigned splSlot_ = 0;
    BranchPredictor bpred_;
    ThreadContext *ctx_ = nullptr;

    /** Fetch buffer and ROB: fixed-capacity rings over slot pools
     *  sized once from the Table II bounds (fetchBufferEntries /
     *  robEntries), so the steady-state pipeline never allocates. */
    BoundedRing<DynInst> fb_;
    BoundedRing<DynInst> rob_;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t intProducer_[isa::numIntRegs] = {};
    std::uint64_t fpProducer_[isa::numFpRegs] = {};

    unsigned intQueueOcc_ = 0;
    unsigned fpQueueOcc_ = 0;
    unsigned loadQueueOcc_ = 0;
    unsigned storeQueueOcc_ = 0;
    /** ROB entries in Stage::Issued (derived; recomputed on restore,
     *  not serialized). Lets writeback() skip the ROB walk when no
     *  completion is possible. */
    unsigned issuedOcc_ = 0;
    /** Exact minimum completeCycle over Stage::Issued ROB entries
     *  (neverCycle when none). Maintained by issue()/writeback(),
     *  recomputed on restore; lets writeback() and nextEventCycle()
     *  skip the ROB walk. Derived, not serialized. */
    Cycle minIssuedComplete_ = neverCycle;
    /**
     * Monotone walk-skip hints: counts of leading rob_ entries each
     * per-tick walk can provably ignore. Skippability never regresses
     * (stages only advance Dispatched -> Issued -> Completed and an
     * entry's flags are fixed), so the hints only need lazy forward
     * advancement plus a saturating decrement when commit() pops.
     * Behaviour-identical whether or not the hints have caught up —
     * they are lower bounds, never assumptions. Derived, reset on
     * restore, not serialized.
     *
     * wbSkip_:    leading entries with stage == Completed; writeback
     *             has nothing to do with them.
     * issueSkip_: leading entries that are Completed, or Issued and
     *             not store-like. Such entries can no longer issue
     *             and contribute nothing to issue()'s older-store /
     *             unissued-spl ordering flags (a Completed store-like
     *             entry never sets them; an Issued non-store-like
     *             entry never did).
     */
    std::size_t wbSkip_ = 0;
    std::size_t issueSkip_ = 0;

    /** @{ @name Decoded basic-block cache (derived, not snapshotted;
     * rebuilt by bindThread()/restore(). `decoded_` is a pure
     * function of the immutable bound Program — see isa/decoded.hh —
     * so it needs no invalidation between those points). */
    bool blockCacheEnabled_ = true; ///< !REMAP_NO_BLOCK_CACHE
    const isa::Program *decodedFor_ = nullptr;
    isa::DecodedProgram decoded_;
    /** @} */

    /** Threaded-code dispatch for fused runs: compile-time support
     *  (computed goto) AND !REMAP_NO_THREADED, latched at
     *  construction like the other kill switches. */
    bool threadedEnabled_ = true;

    /** @{ @name Functional-warming state (sampled mode). */
    bool warming_ = false;
    std::uint64_t warmedInsts_ = 0;
    /** Last icache line probed by warmTick() (line address, i.e.
     *  pcAddr with the offset bits cleared; ~0 = none). Warming
     *  probes the L1I once per line, not once per instruction —
     *  serialized so a warm start resumes the same probe pattern. */
    std::uint64_t warmIFetchLine_ = ~std::uint64_t{0};
    /** Recently probed data lines (direct-mapped by line index; tag
     *  is the line address with bit 0 = last probe was a write).
     *  Serialized for the same warm-start reason. */
    static constexpr std::size_t kWarmDataLines = 4;
    std::uint64_t warmDataLine_[kWarmDataLines] = {
        ~std::uint64_t{0}, ~std::uint64_t{0}, ~std::uint64_t{0},
        ~std::uint64_t{0}};
    /** @{ @name Cache-line geometry, hoisted out of the warm loop
     *  (derived from the fixed MemSystem parameters at construction,
     *  never serialized). */
    std::uint64_t warmILineMask_ = ~std::uint64_t{63};
    std::uint64_t warmDLineMask_ = ~std::uint64_t{63};
    unsigned warmDLineShift_ = 6;
    /** @} */
    /** @} */

    Cycle fetchResumeCycle_ = 0;
    std::uint64_t fetchBlockedOnSeq_ = 0; ///< unresolved mispredict
    bool fetchHalted_ = false;            ///< HALT fetched
    bool draining_ = false;               ///< migration drain request
    Cycle divBusyUntil_ = 0;
    Cycle fpDivBusyUntil_ = 0;
    Cycle storeBufferDrainCycle_ = 0;
    std::ostream *trace_ = nullptr;

    /** @{ @name Event-horizon bookkeeping (per-tick, not snapshotted:
     * the run loop consumes it in the same iteration that ticked). */
    enum : std::uint8_t
    {
        kStallFetch = 1u << 0,     ///< fetchStallCycles
        kStallSplFetch = 1u << 1,  ///< splFetchStalls + L1I re-probe
        kStallSplCommit = 1u << 2, ///< splCommitStalls
        kStallRobFull = 1u << 3,   ///< robFullStalls
        kStallIqFull = 1u << 4,    ///< iqFullStalls
        kStallLsqFull = 1u << 5,   ///< lsqFullStalls
    };
    bool tickProgress_ = true; ///< last tick changed real state
    std::uint8_t stallMask_ = 0; ///< stall counters the tick bumped
    Addr stallFetchAddr_ = 0; ///< pc of the stalled spl_store group
    /** @} */

    /** Close any open SPL stall span at @p now (trace-only state). */
    void traceEndStall(Cycle now, bool commit_side);

    trace::Tracer *tracer_ = nullptr;
    std::uint32_t traceTid_ = 0;
    /** Start cycle of an open commit-side SPL stall span, or 0. */
    Cycle splCommitStallStart_ = 0;
    /** Start cycle of an open fetch-side SPL stall span, or 0. */
    Cycle splFetchStallStart_ = 0;

    prof::Profiler *profiler_ = nullptr;

    StatGroup statGroup_;
    /** Fast-path telemetry group: reported via dumpMetaStatsJson but
     *  never snapshot-serialized, so meta-counters cannot perturb
     *  snapshot byte streams or cross-kill-switch identity. */
    StatGroup metaGroup_;
};

} // namespace remap::cpu

#endif // REMAP_CPU_CORE_HH
