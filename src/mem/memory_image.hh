/**
 * @file
 * MemoryImage — the functional backing store shared by all cores.
 *
 * The timing side of the memory system (caches, bus, DRAM) models
 * *when* accesses complete; the MemoryImage models *what* they return.
 * Keeping the two separate (a standard simulator technique) means
 * coherence bugs can only ever corrupt timing, never program results,
 * which the test suite exploits by checking kernel outputs against
 * golden C++ implementations.
 */

#ifndef REMAP_MEM_MEMORY_IMAGE_HH
#define REMAP_MEM_MEMORY_IMAGE_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace remap::mem
{

/** Sparse, page-granular byte-addressable memory. */
class MemoryImage
{
  public:
    /** Bytes per allocation page. */
    static constexpr std::size_t pageSize = 4096;

    /** Read @p len (1..8) bytes at @p addr, little-endian. */
    std::uint64_t
    read(Addr addr, unsigned len) const
    {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < len; ++i)
            v |= std::uint64_t(peek(addr + i)) << (8 * i);
        return v;
    }

    /** Write the low @p len bytes of @p value at @p addr. */
    void
    write(Addr addr, std::uint64_t value, unsigned len)
    {
        for (unsigned i = 0; i < len; ++i)
            poke(addr + i, std::uint8_t(value >> (8 * i)));
    }

    /** Typed convenience accessors. */
    std::int64_t
    readI64(Addr a) const
    {
        return static_cast<std::int64_t>(read(a, 8));
    }
    std::int32_t
    readI32(Addr a) const
    {
        return static_cast<std::int32_t>(read(a, 4));
    }
    std::uint8_t readU8(Addr a) const { return peek(a); }
    double
    readF64(Addr a) const
    {
        std::uint64_t bits = read(a, 8);
        double d;
        std::memcpy(&d, &bits, 8);
        return d;
    }

    void writeI64(Addr a, std::int64_t v)
    {
        write(a, static_cast<std::uint64_t>(v), 8);
    }
    void writeI32(Addr a, std::int32_t v)
    {
        write(a, static_cast<std::uint32_t>(v), 4);
    }
    void writeU8(Addr a, std::uint8_t v) { poke(a, v); }
    void
    writeF64(Addr a, double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        write(a, bits, 8);
    }

    /** Zero-fill and drop all pages. */
    void clear() { pages_.clear(); }

    /** Serialize allocated pages in sorted page order (canonical:
     *  the byte stream depends only on memory contents, not on the
     *  hash map's iteration order). */
    void
    save(snap::Serializer &s) const
    {
        s.section("image");
        std::vector<Addr> page_nums;
        page_nums.reserve(pages_.size());
        for (const auto &[num, page] : pages_)
            page_nums.push_back(num);
        std::sort(page_nums.begin(), page_nums.end());
        s.u32(static_cast<std::uint32_t>(page_nums.size()));
        for (Addr num : page_nums) {
            s.u64(num);
            s.bytes(pages_.at(num)->data(), pageSize);
        }
    }

    /** Replace all contents with the pages saved by save(). */
    void
    restore(snap::Deserializer &d)
    {
        if (!d.section("image"))
            return;
        const std::uint32_t n = d.count(8 + pageSize);
        std::unordered_map<
            Addr, std::unique_ptr<std::vector<std::uint8_t>>> pages;
        for (std::uint32_t i = 0; i < n && d.ok(); ++i) {
            const Addr num = d.u64();
            auto page = std::make_unique<std::vector<std::uint8_t>>(
                pageSize, 0);
            d.bytes(page->data(), pageSize);
            pages.emplace(num, std::move(page));
        }
        if (d.ok())
            pages_ = std::move(pages);
    }

  private:
    std::uint8_t
    peek(Addr addr) const
    {
        auto it = pages_.find(addr / pageSize);
        if (it == pages_.end())
            return 0;
        return (*it->second)[addr % pageSize];
    }

    void
    poke(Addr addr, std::uint8_t v)
    {
        auto &page = pages_[addr / pageSize];
        if (!page)
            page = std::make_unique<
                std::vector<std::uint8_t>>(pageSize, 0);
        (*page)[addr % pageSize] = v;
    }

    std::unordered_map<Addr,
        std::unique_ptr<std::vector<std::uint8_t>>> pages_;
};

} // namespace remap::mem

#endif // REMAP_MEM_MEMORY_IMAGE_HH
