/**
 * @file
 * A set-associative cache with per-line MESI state and LRU
 * replacement. Purely a tag/state store — data lives in the
 * MemoryImage — so the class models hit/miss behaviour, coherence
 * state transitions and victim selection.
 */

#ifndef REMAP_MEM_CACHE_HH
#define REMAP_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace remap::mem
{

/** MESI coherence states. */
enum class Mesi : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Geometry and latency of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 8 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;
    /** Access latency in core cycles (hit time). */
    Cycle latency = 2;
};

/** Tag/state store for one cache. */
class Cache
{
  public:
    /** One cache line's bookkeeping. */
    struct Line
    {
        Addr tag = 0;
        Mesi state = Mesi::Invalid;
        std::uint64_t lruStamp = 0;
    };

    explicit Cache(const CacheParams &params);

    /** Hit time in core cycles. */
    Cycle latency() const { return params_.latency; }
    /** Line size in bytes. */
    unsigned lineBytes() const { return params_.lineBytes; }
    /** Line-aligned base address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~Addr(lineMask_); }

    /**
     * Find the line holding @p addr.
     * @return pointer into the tag store, or nullptr on miss.
     *         Updates LRU on hit.
     */
    Line *lookup(Addr addr);

    /** Const lookup with no LRU update (for snoops and tests). */
    const Line *probe(Addr addr) const;

    /**
     * Replicate @p n consecutive pure hits on @p addr: advance the
     * LRU clock and the line's stamp as n lookup() calls would and
     * credit n hits. The line must be resident — callers use this to
     * bulk-account re-probes of a line a prior access just hit.
     */
    void accountRepeatedHits(Addr addr, std::uint64_t n);

    /**
     * Allocate a line for @p addr, evicting LRU if needed.
     *
     * @param[out] victim_addr line address of the evicted line
     * @param[out] victim_state state the victim was in (Invalid when
     *             no victim was evicted)
     * @return the (re)allocated line, state set to Invalid; caller
     *         sets the new coherence state.
     */
    Line *allocate(Addr addr, Addr *victim_addr, Mesi *victim_state);

    /** Invalidate the line holding @p addr if present.
     *  @return the state it was in (Invalid if absent). */
    Mesi invalidate(Addr addr);

    /** Downgrade M/E to Shared if present; @return previous state. */
    Mesi downgradeToShared(Addr addr);

    /** Drop every line (used on thread migration / region reset). */
    void flushAll();

    /** Number of valid (non-Invalid) lines currently resident. */
    std::size_t residentLines() const;

    /** Stats group for reporting. */
    StatGroup &stats() { return statGroup_; }

    /** Fast-path telemetry group (MRU way prediction): reported in
     *  the stats "sim" subtree, never snapshot-serialized. */
    StatGroup &metaStats() { return metaGroup_; }

    /** Serialize valid lines (sparse), the LRU clock and the stats.
     *  Canonical: invalid lines are not written, so two caches with
     *  identical resident contents serialize identically regardless
     *  of stale bookkeeping left in invalid ways. */
    void save(snap::Serializer &s) const;
    /** Restore into a cache of identical geometry; invalid lines are
     *  reset to the default-constructed state. */
    void restore(snap::Deserializer &d);

    /** @{ @name Access statistics, maintained by the MemSystem. */
    StatCounter hits;
    StatCounter misses;
    StatCounter evictions;
    StatCounter writebacks;
    StatCounter snoopInvalidations;
    /** @} */

    /** @{ @name MRU way-prediction telemetry (meta-stats; hits on
     * walk-found lines count as mru_misses). Not serialized. */
    StatCounter mruHits;
    StatCounter mruMisses;
    /** @} */

  private:
    std::size_t setIndex(Addr addr) const;

    CacheParams params_;
    std::size_t numSets_;
    Addr lineMask_;
    std::vector<Line> lines_;  ///< numSets_ * assoc, set-major
    std::uint64_t lruClock_ = 0;
    /**
     * Per-set MRU way, the lookup() fast path: the predicted way is
     * verified by tag+state before use, so a stale prediction only
     * costs the full set walk it would have done anyway — never a
     * wrong result. Derived state: reset by flushAll()/restore(),
     * disabled entirely by REMAP_NO_MRU=1 (read at construction).
     */
    std::vector<std::uint8_t> mruWay_;
    bool mruEnabled_ = true;
    StatGroup statGroup_;
    StatGroup metaGroup_;
};

} // namespace remap::mem

#endif // REMAP_MEM_CACHE_HH
