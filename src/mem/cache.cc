#include "mem/cache.hh"

#include "sim/logging.hh"

namespace remap::mem
{

Cache::Cache(const CacheParams &params)
    : params_(params), statGroup_(params.name)
{
    REMAP_ASSERT(params_.lineBytes > 0 &&
                 (params_.lineBytes & (params_.lineBytes - 1)) == 0,
                 "line size must be a power of two");
    std::size_t num_lines = params_.sizeBytes / params_.lineBytes;
    REMAP_ASSERT(num_lines % params_.assoc == 0,
                 "cache geometry does not divide evenly");
    numSets_ = num_lines / params_.assoc;
    lineMask_ = params_.lineBytes - 1;
    lines_.resize(num_lines);

    statGroup_.addCounter("hits", &hits);
    statGroup_.addCounter("misses", &misses);
    statGroup_.addCounter("evictions", &evictions);
    statGroup_.addCounter("writebacks", &writebacks);
    statGroup_.addCounter("snoop_invalidations",
                          &snoopInvalidations);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / params_.lineBytes) % numSets_;
}

Cache::Line *
Cache::lookup(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag) {
            line.lruStamp = ++lruClock_;
            return &line;
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::probe(Addr addr) const
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

Cache::Line *
Cache::allocate(Addr addr, Addr *victim_addr, Mesi *victim_state)
{
    *victim_addr = 0;
    *victim_state = Mesi::Invalid;

    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;

    // Prefer an invalid way; otherwise evict true-LRU.
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state == Mesi::Invalid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    if (victim->state != Mesi::Invalid) {
        ++evictions;
        if (victim->state == Mesi::Modified)
            ++writebacks;
        *victim_addr = victim->tag;
        *victim_state = victim->state;
    }

    victim->tag = tag;
    victim->state = Mesi::Invalid;
    victim->lruStamp = ++lruClock_;
    return victim;
}

Mesi
Cache::invalidate(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag) {
            Mesi prev = line.state;
            line.state = Mesi::Invalid;
            ++snoopInvalidations;
            return prev;
        }
    }
    return Mesi::Invalid;
}

Mesi
Cache::downgradeToShared(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag) {
            Mesi prev = line.state;
            line.state = Mesi::Shared;
            return prev;
        }
    }
    return Mesi::Invalid;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.state = Mesi::Invalid;
}

std::size_t
Cache::residentLines() const
{
    std::size_t n = 0;
    for (const auto &line : lines_)
        if (line.state != Mesi::Invalid)
            ++n;
    return n;
}

} // namespace remap::mem
