#include "mem/cache.hh"

#include <algorithm>

#include "sim/env.hh"
#include "sim/logging.hh"

namespace remap::mem
{

Cache::Cache(const CacheParams &params)
    : params_(params), statGroup_(params.name),
      metaGroup_(params.name)
{
    REMAP_ASSERT(params_.lineBytes > 0 &&
                 (params_.lineBytes & (params_.lineBytes - 1)) == 0,
                 "line size must be a power of two");
    std::size_t num_lines = params_.sizeBytes / params_.lineBytes;
    REMAP_ASSERT(num_lines % params_.assoc == 0,
                 "cache geometry does not divide evenly");
    numSets_ = num_lines / params_.assoc;
    lineMask_ = params_.lineBytes - 1;
    lines_.resize(num_lines);
    REMAP_ASSERT(params_.assoc <= 256,
                 "associativity exceeds the MRU way table width");
    mruWay_.assign(numSets_, 0);
    mruEnabled_ = !env::noMru();

    statGroup_.addCounter("hits", &hits);
    statGroup_.addCounter("misses", &misses);
    statGroup_.addCounter("evictions", &evictions);
    statGroup_.addCounter("writebacks", &writebacks);
    statGroup_.addCounter("snoop_invalidations",
                          &snoopInvalidations);
    metaGroup_.addCounter("mru_hits", &mruHits);
    metaGroup_.addCounter("mru_misses", &mruMisses);
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / params_.lineBytes) % numSets_;
}

Cache::Line *
Cache::lookup(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t set = setIndex(addr);
    std::size_t base = set * params_.assoc;

    // MRU way prediction: repeated hits on the same hot line skip
    // the set walk. The prediction is verified (tag + valid state),
    // and a predicted hit performs exactly the walk's hit actions,
    // so results and LRU bookkeeping are identical either way.
    if (mruEnabled_) {
        Line &pred = lines_[base + mruWay_[set]];
        if (pred.state != Mesi::Invalid && pred.tag == tag) {
            ++mruHits;
            pred.lruStamp = ++lruClock_;
            return &pred;
        }
    }

    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag) {
            if (mruEnabled_)
                ++mruMisses;
            line.lruStamp = ++lruClock_;
            mruWay_[set] = static_cast<std::uint8_t>(w);
            return &line;
        }
    }
    return nullptr;
}

void
Cache::accountRepeatedHits(Addr addr, std::uint64_t n)
{
    if (n == 0)
        return;
    Line *line = lookup(addr);
    REMAP_ASSERT(line, "bulk-accounting hits on a non-resident line");
    lruClock_ += n - 1;
    line->lruStamp = lruClock_;
    hits += n;
}

const Cache::Line *
Cache::probe(Addr addr) const
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        const Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

Cache::Line *
Cache::allocate(Addr addr, Addr *victim_addr, Mesi *victim_state)
{
    *victim_addr = 0;
    *victim_state = Mesi::Invalid;

    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;

    // Prefer an invalid way; otherwise evict true-LRU.
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state == Mesi::Invalid) {
            victim = &line;
            break;
        }
        if (!victim || line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    if (victim->state != Mesi::Invalid) {
        ++evictions;
        if (victim->state == Mesi::Modified)
            ++writebacks;
        *victim_addr = victim->tag;
        *victim_state = victim->state;
    }

    victim->tag = tag;
    victim->state = Mesi::Invalid;
    victim->lruStamp = ++lruClock_;
    mruWay_[setIndex(addr)] =
        static_cast<std::uint8_t>(victim - &lines_[base]);
    return victim;
}

Mesi
Cache::invalidate(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag) {
            Mesi prev = line.state;
            line.state = Mesi::Invalid;
            ++snoopInvalidations;
            return prev;
        }
    }
    return Mesi::Invalid;
}

Mesi
Cache::downgradeToShared(Addr addr)
{
    Addr tag = lineAddr(addr);
    std::size_t base = setIndex(addr) * params_.assoc;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        Line &line = lines_[base + w];
        if (line.state != Mesi::Invalid && line.tag == tag) {
            Mesi prev = line.state;
            line.state = Mesi::Shared;
            return prev;
        }
    }
    return Mesi::Invalid;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.state = Mesi::Invalid;
    // The predictions are now all stale; reset them (correct either
    // way — predictions are verified — but canonical is cheaper than
    // a guaranteed mispredict per set).
    std::fill(mruWay_.begin(), mruWay_.end(), 0);
}

std::size_t
Cache::residentLines() const
{
    std::size_t n = 0;
    for (const auto &line : lines_)
        if (line.state != Mesi::Invalid)
            ++n;
    return n;
}

void
Cache::save(snap::Serializer &s) const
{
    s.section("cache");
    s.str(params_.name);
    s.u32(static_cast<std::uint32_t>(lines_.size()));
    // The way a line occupies matters (allocate() prefers the first
    // invalid way and breaks LRU ties by way order), so each valid
    // line is written with its position in the tag store.
    s.u32(static_cast<std::uint32_t>(residentLines()));
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const Line &line = lines_[i];
        if (line.state == Mesi::Invalid)
            continue;
        s.u32(static_cast<std::uint32_t>(i));
        s.u64(line.tag);
        s.u8(static_cast<std::uint8_t>(line.state));
        s.u64(line.lruStamp);
    }
    s.u64(lruClock_);
    statGroup_.save(s);
}

void
Cache::restore(snap::Deserializer &d)
{
    if (!d.section("cache"))
        return;
    if (d.str() != params_.name) {
        d.fail("cache name mismatch");
        return;
    }
    // Geometry cross-check against a value the reader already knows;
    // plain u32(), not count() — only *resident* lines follow in the
    // stream, so a sparsely-filled large cache would trip count()'s
    // bytes-remaining plausibility guard.
    if (d.u32() != lines_.size()) {
        d.fail("cache geometry mismatch");
        return;
    }
    const std::uint32_t resident = d.count(21);
    // Invalid ways never influence behaviour (lookup/allocate check
    // state first), so resetting them keeps restored state canonical.
    for (auto &line : lines_)
        line = Line{};
    for (std::uint32_t i = 0; i < resident && d.ok(); ++i) {
        const std::uint32_t idx = d.u32();
        if (idx >= lines_.size()) {
            d.fail("cache line index out of range");
            return;
        }
        Line &line = lines_[idx];
        line.tag = d.u64();
        const std::uint8_t state = d.u8();
        if (state > static_cast<std::uint8_t>(Mesi::Modified)) {
            d.fail("bad MESI state");
            return;
        }
        line.state = static_cast<Mesi>(state);
        line.lruStamp = d.u64();
    }
    lruClock_ = d.u64();
    statGroup_.restore(d);
    // MRU way predictions are derived fast-path state: they are not
    // serialized (snapshots stay canonical and identical across
    // REMAP_NO_MRU settings), so rebuild them from scratch here.
    std::fill(mruWay_.begin(), mruWay_.end(), 0);
}

} // namespace remap::mem
