/**
 * @file
 * MemSystem — the chip's timing memory hierarchy.
 *
 * Per core: an 8 kB 2-way L1I and L1D (2-cycle) backed by a 1 MB
 * private L2 (10-cycle), per Table II of the paper. The private L2s
 * snoop a shared MESI bus; misses go to a 100 ns main memory. The
 * hierarchy is inclusive: L2 evictions and snoop invalidations
 * back-invalidate the L1s.
 *
 * The model is latency-based with bus occupancy: each access computes
 * its completion cycle from hit level, coherence transitions and bus
 * availability (a busy-until register models serialization).
 */

#ifndef REMAP_MEM_MEM_SYSTEM_HH
#define REMAP_MEM_MEM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "mem/cache.hh"
#include "sim/profile.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace remap::mem
{

/** Kinds of timing accesses a core can issue. */
enum class AccessKind : std::uint8_t
{
    IFetch, ///< instruction fetch (L1I path)
    Read,   ///< data load
    Write,  ///< data store
    Amo,    ///< atomic read-modify-write (behaves as write for MESI)
};

/** Hierarchy-wide latency/geometry parameters (Table II defaults). */
struct MemSystemParams
{
    CacheParams l1i{"l1i", 8 * 1024, 2, 64, 2};
    CacheParams l1d{"l1d", 8 * 1024, 2, 64, 2};
    CacheParams l2{"l2", 1024 * 1024, 8, 64, 10};
    /** Main memory access time in core cycles (100 ns @ 2 GHz). */
    Cycle memLatency = 200;
    /** Bus occupancy per coherence transaction, in core cycles. */
    Cycle busOccupancy = 8;
    /** Cache-to-cache transfer latency in core cycles. */
    Cycle cacheToCacheLatency = 25;
};

/**
 * The full multi-core timing memory hierarchy.
 *
 * One instance serves every core on the chip. Thread-unsafe by design:
 * the simulation loop is single-threaded and interleaves cores
 * cycle-by-cycle.
 */
class MemSystem
{
  public:
    /**
     * @param num_cores number of cores (each gets L1I+L1D+L2)
     * @param params geometry/latency knobs
     */
    MemSystem(unsigned num_cores, const MemSystemParams &params = {});

    /**
     * Perform the timing side of one access.
     *
     * @param core requesting core
     * @param addr byte address (the whole access is attributed to the
     *             line containing @p addr)
     * @param kind fetch/read/write/amo
     * @param now cycle the request leaves the core
     * @return cycle at which the data is available to the core
     */
    Cycle
    access(CoreId core, Addr addr, AccessKind kind, Cycle now)
    {
        prof::ScopedTimer timer(profiler_, prof::Phase::CacheAccess);
        return accessTimed(core, addr, kind, now);
    }

    /** Attribute hierarchy access host time to @p p (null disables). */
    void setProfiler(prof::Profiler *p) { profiler_ = p; }

    /** Invalidate all caches of @p core (thread migration). */
    void flushCore(CoreId core);

    /** Per-core caches, exposed for stats/power accounting. */
    Cache &l1i(CoreId core) { return *l1i_[core]; }
    Cache &l1d(CoreId core) { return *l1d_[core]; }
    Cache &l2(CoreId core) { return *l2_[core]; }

    /** L1I miss count for @p core — compared around an IFetch access
     *  to detect a pure hit (no state change beyond LRU/hit count). */
    std::uint64_t l1iMisses(CoreId core) const
    {
        return l1i_[core]->misses.value();
    }

    /** Bulk-replicate @p n pure L1I hits of @p core on @p addr (the
     *  event-horizon leap's stand-in for n per-cycle re-probes). */
    void accountRepeatedIFetchHits(CoreId core, Addr addr,
                                   std::uint64_t n)
    {
        l1i_[core]->accountRepeatedHits(addr, n);
    }
    unsigned numCores() const { return static_cast<unsigned>(
        l2_.size()); }

    /** @{ @name Global statistics. */
    StatCounter busTransactions;
    StatCounter memAccesses;
    StatCounter cacheToCacheTransfers;
    StatCounter upgrades;
    /** @} */

    /** Dump every cache's stats plus bus/memory counters. */
    void dumpStats(std::ostream &os);

    /** Emit the same stats into an open JSON object scope of @p w
     *  (one sub-object per StatGroup). */
    void dumpStatsJson(json::Writer &w);

    /** Emit every cache's MRU way-prediction meta-stats into an open
     *  JSON object scope of @p w. */
    void dumpMetaStatsJson(json::Writer &w);

    /** Reset all statistics (start of a measured region). */
    void resetStats();

    /** Serialize bus state, global counters and every cache. */
    void save(snap::Serializer &s) const;
    /** Restore into a hierarchy of identical geometry. */
    void restore(snap::Deserializer &d);

  private:
    /** The timing body of access() (split so the inline wrapper can
     *  bracket it with the CacheAccess scoped timer). */
    Cycle accessTimed(CoreId core, Addr addr, AccessKind kind,
                      Cycle now);

    /**
     * Obtain the line in @p core's L2 in a state sufficient for
     * @p kind, running the MESI bus transaction if needed.
     * @return cycle the L2 can supply the line.
     */
    Cycle fillL2(CoreId core, Addr addr, AccessKind kind, Cycle now);

    /** Acquire the snoop bus: returns grant cycle, bumps busy-until. */
    Cycle acquireBus(Cycle now);

    /** Invalidate/downgrade remote copies; @return true if a remote
     *  M/E copy supplied the data. */
    bool snoopRemotes(CoreId requester, Addr addr, bool exclusive);

    MemSystemParams params_;
    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    Cycle busBusyUntil_ = 0;
    prof::Profiler *profiler_ = nullptr;
    StatGroup statGroup_;
};

} // namespace remap::mem

#endif // REMAP_MEM_MEM_SYSTEM_HH
