#include "mem/mem_system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace remap::mem
{

MemSystem::MemSystem(unsigned num_cores, const MemSystemParams &params)
    : params_(params), statGroup_("mem")
{
    REMAP_ASSERT(num_cores > 0, "need at least one core");
    for (unsigned c = 0; c < num_cores; ++c) {
        CacheParams p1i = params_.l1i;
        p1i.name = "core" + std::to_string(c) + ".l1i";
        CacheParams p1d = params_.l1d;
        p1d.name = "core" + std::to_string(c) + ".l1d";
        CacheParams p2 = params_.l2;
        p2.name = "core" + std::to_string(c) + ".l2";
        l1i_.push_back(std::make_unique<Cache>(p1i));
        l1d_.push_back(std::make_unique<Cache>(p1d));
        l2_.push_back(std::make_unique<Cache>(p2));
    }
    statGroup_.addCounter("bus_transactions", &busTransactions);
    statGroup_.addCounter("mem_accesses", &memAccesses);
    statGroup_.addCounter("cache_to_cache", &cacheToCacheTransfers);
    statGroup_.addCounter("upgrades", &upgrades);
}

Cycle
MemSystem::acquireBus(Cycle now)
{
    Cycle grant = std::max(now, busBusyUntil_);
    busBusyUntil_ = grant + params_.busOccupancy;
    ++busTransactions;
    return grant;
}

bool
MemSystem::snoopRemotes(CoreId requester, Addr addr, bool exclusive)
{
    bool remote_dirty = false;
    for (unsigned c = 0; c < l2_.size(); ++c) {
        if (c == requester)
            continue;
        const Cache::Line *line = l2_[c]->probe(addr);
        if (!line)
            continue;
        if (line->state == Mesi::Modified ||
            line->state == Mesi::Exclusive) {
            remote_dirty = (line->state == Mesi::Modified);
        }
        if (exclusive) {
            l2_[c]->invalidate(addr);
            // Inclusion: kill any L1 copies too.
            l1d_[c]->invalidate(addr);
            l1i_[c]->invalidate(addr);
        } else {
            l2_[c]->downgradeToShared(addr);
            l1d_[c]->downgradeToShared(addr);
        }
    }
    return remote_dirty;
}

Cycle
MemSystem::fillL2(CoreId core, Addr addr, AccessKind kind, Cycle now)
{
    Cache &l2c = *l2_[core];
    const bool wants_exclusive =
        kind == AccessKind::Write || kind == AccessKind::Amo;

    Cache::Line *line = l2c.lookup(addr);
    if (line) {
        ++l2c.hits;
        Cycle ready = now + l2c.latency();
        if (!wants_exclusive)
            return ready;
        switch (line->state) {
          case Mesi::Modified:
          case Mesi::Exclusive:
            line->state = Mesi::Modified;
            return ready;
          case Mesi::Shared: {
            // BusUpgr: invalidate remote sharers.
            ++upgrades;
            Cycle grant = acquireBus(ready);
            snoopRemotes(core, addr, /*exclusive=*/true);
            line->state = Mesi::Modified;
            return grant + params_.busOccupancy;
          }
          case Mesi::Invalid:
            break; // fall through to miss path below
        }
    }

    // L2 miss: BusRd / BusRdX.
    ++l2c.misses;
    Cycle grant = acquireBus(now + l2c.latency());
    bool remote_supplied =
        snoopRemotes(core, addr, wants_exclusive) ||
        [&] {
            // A remote E/S copy can also supply on a read; check for
            // any remote copy at all for cache-to-cache transfer.
            for (unsigned c = 0; c < l2_.size(); ++c) {
                if (c != core && l2_[c]->probe(addr))
                    return true;
            }
            return false;
        }();

    Cycle data_ready;
    if (remote_supplied) {
        ++cacheToCacheTransfers;
        data_ready = grant + params_.cacheToCacheLatency;
    } else {
        ++memAccesses;
        data_ready = grant + params_.memLatency;
    }

    Addr victim_addr;
    Mesi victim_state;
    line = l2c.allocate(addr, &victim_addr, &victim_state);
    if (victim_state != Mesi::Invalid) {
        // Inclusion: back-invalidate the L1s for the victim line.
        l1d_[core]->invalidate(victim_addr);
        l1i_[core]->invalidate(victim_addr);
        if (victim_state == Mesi::Modified) {
            // Writeback occupies the bus but is off the critical path
            // (posted through a write buffer).
            acquireBus(data_ready);
        }
    }

    if (wants_exclusive)
        line->state = Mesi::Modified;
    else
        line->state = remote_supplied ? Mesi::Shared : Mesi::Exclusive;
    return data_ready;
}

Cycle
MemSystem::accessTimed(CoreId core, Addr addr, AccessKind kind,
                       Cycle now)
{
    REMAP_ASSERT(core < l2_.size(), "core id out of range");
    Cache &l1 = (kind == AccessKind::IFetch) ? *l1i_[core] : *l1d_[core];
    const bool wants_exclusive =
        kind == AccessKind::Write || kind == AccessKind::Amo;

    Cache::Line *line = l1.lookup(addr);
    if (line) {
        if (!wants_exclusive || line->state == Mesi::Modified ||
            line->state == Mesi::Exclusive) {
            ++l1.hits;
            if (wants_exclusive)
                line->state = Mesi::Modified;
            return now + l1.latency();
        }
        // Shared in L1 on a write: upgrade through L2.
        ++l1.misses;
        Cycle ready = fillL2(core, addr, kind, now + l1.latency());
        line->state = Mesi::Modified;
        return ready;
    }

    // L1 miss: fill from the L2 side.
    ++l1.misses;
    Cycle ready = fillL2(core, addr, kind, now + l1.latency());

    Addr victim_addr;
    Mesi victim_state;
    line = l1.allocate(addr, &victim_addr, &victim_state);
    (void)victim_addr;
    // L1 victim writeback folds into the L2 (already resident by
    // inclusion); no bus traffic.
    if (wants_exclusive) {
        line->state = Mesi::Modified;
    } else {
        const Cache::Line *l2line = l2_[core]->probe(addr);
        line->state = (l2line && (l2line->state == Mesi::Exclusive ||
                                  l2line->state == Mesi::Modified))
                          ? Mesi::Exclusive
                          : Mesi::Shared;
    }
    return ready;
}

void
MemSystem::flushCore(CoreId core)
{
    REMAP_ASSERT(core < l2_.size(), "core id out of range");
    l1i_[core]->flushAll();
    l1d_[core]->flushAll();
    l2_[core]->flushAll();
}

void
MemSystem::dumpStats(std::ostream &os)
{
    statGroup_.dump(os);
    for (unsigned c = 0; c < l2_.size(); ++c) {
        l1i_[c]->stats().dump(os);
        l1d_[c]->stats().dump(os);
        l2_[c]->stats().dump(os);
    }
}

void
MemSystem::dumpStatsJson(json::Writer &w)
{
    statGroup_.dumpJson(w);
    for (unsigned c = 0; c < l2_.size(); ++c) {
        l1i_[c]->stats().dumpJson(w);
        l1d_[c]->stats().dumpJson(w);
        l2_[c]->stats().dumpJson(w);
    }
}

void
MemSystem::dumpMetaStatsJson(json::Writer &w)
{
    for (unsigned c = 0; c < l2_.size(); ++c) {
        l1i_[c]->metaStats().dumpJson(w);
        l1d_[c]->metaStats().dumpJson(w);
        l2_[c]->metaStats().dumpJson(w);
    }
}

void
MemSystem::resetStats()
{
    statGroup_.reset();
    for (unsigned c = 0; c < l2_.size(); ++c) {
        l1i_[c]->stats().reset();
        l1d_[c]->stats().reset();
        l2_[c]->stats().reset();
        l1i_[c]->metaStats().reset();
        l1d_[c]->metaStats().reset();
        l2_[c]->metaStats().reset();
    }
}

void
MemSystem::save(snap::Serializer &s) const
{
    s.section("memsys");
    s.u32(static_cast<std::uint32_t>(l2_.size()));
    s.u64(busBusyUntil_);
    statGroup_.save(s);
    for (unsigned c = 0; c < l2_.size(); ++c) {
        l1i_[c]->save(s);
        l1d_[c]->save(s);
        l2_[c]->save(s);
    }
}

void
MemSystem::restore(snap::Deserializer &d)
{
    if (!d.section("memsys"))
        return;
    if (d.u32() != l2_.size()) {
        d.fail("core count mismatch");
        return;
    }
    busBusyUntil_ = d.u64();
    statGroup_.restore(d);
    for (unsigned c = 0; c < l2_.size() && d.ok(); ++c) {
        l1i_[c]->restore(d);
        l1d_[c]->restore(d);
        l2_[c]->restore(d);
    }
}

} // namespace remap::mem
