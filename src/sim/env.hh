/**
 * @file
 * Centralized REMAP_* environment-switch reads.
 *
 * Every kill switch and mode override the simulator honours is
 * declared here, parsed in one place and announced once per process
 * (like the JobPool worker-count log), instead of ad-hoc getenv()
 * calls scattered through component constructors. The helpers still
 * re-read the environment on every call — the differential tests
 * flip switches with setenv()/unsetenv() around component
 * construction, and components latch the value in their constructor
 * — but the *first* observation of a set switch is logged, so a run
 * with REMAP_NO_LEAP=1 is explainable from its log.
 *
 * Switches:
 *  - REMAP_NO_LEAP=1        disable the event-horizon leap scheduler
 *  - REMAP_NO_BLOCK_CACHE=1 disable the decoded basic-block cache
 *  - REMAP_NO_MRU=1         disable the cache MRU-way fast path
 *  - REMAP_NO_THREADED=1    disable computed-goto threaded dispatch
 *  - REMAP_NO_SAMPLE_REPLAY=1 disable checkpointed sample replay
 *  - REMAP_SAMPLE=...       default sampled-mode schedule (see
 *                           env::sampleParams())
 */

#ifndef REMAP_SIM_ENV_HH
#define REMAP_SIM_ENV_HH

#include <string>

#include "sim/sampling.hh"

namespace remap::env
{

/** True when REMAP_NO_LEAP is set: event-horizon leap disabled. */
bool noLeap();

/** True when REMAP_NO_BLOCK_CACHE is set: decoded-block cache off. */
bool noBlockCache();

/** True when REMAP_NO_MRU is set: cache MRU-way fast path off. */
bool noMru();

/** True when REMAP_NO_THREADED is set: computed-goto dispatch off
 *  (generic switch dispatch everywhere). */
bool noThreaded();

/** True when REMAP_NO_SAMPLE_REPLAY is set: checkpointed sample
 *  replay disabled — sampled runs always re-simulate functional
 *  warming, exactly the pre-replay behaviour. */
bool noSampleReplay();

/**
 * Strict REMAP_SAMPLE-value parser. Accepted forms:
 *
 *   "1"                    the built-in default schedule
 *   "P" / "P,M" / "P,M,W"  explicit period / measured-window /
 *                          detailed-warm-up lengths in committed
 *                          instructions (decimal, no signs)
 *   "auto"                 adaptive schedule, default 2% relative
 *                          CI half-width target
 *   "auto,H"               adaptive with target H in (0, 1)
 *
 * Anything else — sign characters, empty fields, trailing garbage,
 * a zero period or window, a window or warm+window that does not fit
 * the period, a target outside (0, 1) — fails: @p out is left
 * disabled and @p error receives a one-line description. Exposed so
 * each malformed form is unit-testable without a fatal exit.
 */
bool parseSampleSpec(const char *text, sampling::SampleParams *out,
                     std::string *error);

/**
 * The sampled-mode schedule requested via REMAP_SAMPLE, or a
 * disabled default when the variable is unset. Malformed values are
 * a fatal error (one clear line, via parseSampleSpec()) — a mistyped
 * schedule must never silently fall back to exact simulation.
 */
sampling::SampleParams sampleParams();

} // namespace remap::env

#endif // REMAP_SIM_ENV_HH
