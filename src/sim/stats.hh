/**
 * @file
 * Lightweight statistics framework: named scalar counters, averages and
 * histograms that register themselves with a StatGroup for reporting.
 *
 * Modelled on gem5's stats package at a much smaller scale: every
 * hardware structure owns a StatGroup; the System aggregates groups
 * into a report.
 */

#ifndef REMAP_SIM_STATS_HH
#define REMAP_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace remap
{

namespace json
{
class Writer;
}

/** A named monotonically increasing 64-bit counter. */
class StatCounter
{
  public:
    StatCounter() = default;

    /** Add @p n events. */
    void operator+=(std::uint64_t n) { value_ += n; }
    /** Record a single event. */
    StatCounter &operator++() { ++value_; return *this; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (used between measurement regions). */
    void reset() { value_ = 0; }

    /** Serialize (snapshot support). */
    void save(snap::Serializer &s) const { s.u64(value_); }
    /** Restore a value saved by save(). */
    void restore(snap::Deserializer &d) { value_ = d.u64(); }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity. */
class StatAverage
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Mean of samples, or 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Discard all samples. */
    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    /** Serialize (snapshot support). */
    void
    save(snap::Serializer &s) const
    {
        s.f64(sum_);
        s.u64(count_);
    }

    /** Restore a value saved by save(). */
    void
    restore(snap::Deserializer &d)
    {
        sum_ = d.f64();
        count_ = d.u64();
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class StatHistogram
{
  public:
    /**
     * @param bucket_count number of equal-width buckets
     * @param bucket_width width of each bucket
     */
    explicit StatHistogram(unsigned bucket_count = 16,
                           double bucket_width = 1.0)
        : buckets_(bucket_count, 0), width_(bucket_width)
    {
    }

    /** Record one sample; out-of-range samples land in the last bucket. */
    void
    sample(double v)
    {
        auto idx = static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        ++count_;
    }

    /** Count in bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    /** Number of buckets. */
    std::size_t size() const { return buckets_.size(); }
    /** Total samples. */
    std::uint64_t count() const { return count_; }

    /** Discard all samples. */
    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t count_ = 0;
};

/**
 * A named collection of statistics belonging to one simulated object.
 *
 * Stats are registered by pointer; the group does not own them. The
 * owning object must outlive the group's reporting calls (in practice
 * both live in the same structure).
 */
class StatGroup
{
  public:
    /** @param name dotted path of the owning object, e.g. "core0.rob" */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. */
    void
    addCounter(const std::string &stat_name, StatCounter *c)
    {
        counters_.emplace(stat_name, c);
    }

    /** Register an average under @p stat_name. */
    void
    addAverage(const std::string &stat_name, StatAverage *a)
    {
        averages_.emplace(stat_name, a);
    }

    /** Group name (dotted path). */
    const std::string &name() const { return name_; }

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Emit this group as `"name": {stat: value, ...}` into an open
     * JSON object scope of @p w (counters as integers, averages as
     * their mean).
     */
    void dumpJson(json::Writer &w) const;

    /** Reset every registered stat. */
    void reset();

    /**
     * Serialize every registered counter and average, keyed by stat
     * name (std::map order, so the byte stream is deterministic).
     */
    void save(snap::Serializer &s) const;

    /**
     * Restore stats saved by save(). The registered stat set must
     * match the saved one (same names, same counts) — a mismatch
     * marks @p d failed, it never partially applies.
     */
    void restore(snap::Deserializer &d);

    /** Access registered counters (for programmatic queries). */
    const std::map<std::string, StatCounter *> &
    counters() const
    {
        return counters_;
    }

    /** Access registered averages (for programmatic queries). */
    const std::map<std::string, StatAverage *> &
    averages() const
    {
        return averages_;
    }

  private:
    std::string name_;
    std::map<std::string, StatCounter *> counters_;
    std::map<std::string, StatAverage *> averages_;
};

} // namespace remap

#endif // REMAP_SIM_STATS_HH
