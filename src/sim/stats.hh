/**
 * @file
 * Lightweight statistics framework: named scalar counters, averages and
 * histograms that register themselves with a StatGroup for reporting.
 *
 * Modelled on gem5's stats package at a much smaller scale: every
 * hardware structure owns a StatGroup; the System aggregates groups
 * into a report.
 */

#ifndef REMAP_SIM_STATS_HH
#define REMAP_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace remap
{

namespace json
{
class Writer;
}

/** A named monotonically increasing 64-bit counter. */
class StatCounter
{
  public:
    StatCounter() = default;

    /** Add @p n events. */
    void operator+=(std::uint64_t n) { value_ += n; }
    /** Record a single event. */
    StatCounter &operator++() { ++value_; return *this; }

    /** Current count. */
    std::uint64_t value() const { return value_; }

    /** Reset to zero (used between measurement regions). */
    void reset() { value_ = 0; }

    /** Serialize (snapshot support). */
    void save(snap::Serializer &s) const { s.u64(value_); }
    /** Restore a value saved by save(). */
    void restore(snap::Deserializer &d) { value_ = d.u64(); }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean of a sampled quantity. */
class StatAverage
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Mean of samples, or 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Discard all samples. */
    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

    /** Serialize (snapshot support). */
    void
    save(snap::Serializer &s) const
    {
        s.f64(sum_);
        s.u64(count_);
    }

    /** Restore a value saved by save(). */
    void
    restore(snap::Deserializer &d)
    {
        sum_ = d.f64();
        count_ = d.u64();
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [0, bucketCount * bucketWidth). */
class StatHistogram
{
  public:
    /**
     * @param bucket_count number of equal-width buckets
     * @param bucket_width width of each bucket
     */
    explicit StatHistogram(unsigned bucket_count = 16,
                           double bucket_width = 1.0)
        : buckets_(bucket_count, 0), width_(bucket_width)
    {
    }

    /** Record one sample; out-of-range samples land in the last bucket. */
    void
    sample(double v)
    {
        auto idx = static_cast<std::size_t>(v / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
        ++count_;
    }

    /** Count in bucket @p i. */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    /** Number of buckets. */
    std::size_t size() const { return buckets_.size(); }
    /** Total samples. */
    std::uint64_t count() const { return count_; }

    /** Discard all samples. */
    void
    reset()
    {
        std::fill(buckets_.begin(), buckets_.end(), 0);
        count_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    double width_;
    std::uint64_t count_ = 0;
};

/**
 * Histogram over power-of-two buckets of a 64-bit sample domain:
 * bucket 0 holds the value 0, bucket i (i >= 1) holds values in
 * [2^(i-1), 2^i). Used for host-time (nanosecond) and skipped-cycle
 * distributions, where samples span many orders of magnitude and the
 * interesting questions are tail percentiles, not exact moments.
 */
class Log2Histogram
{
  public:
    /** Bucket count: value 0 plus one bucket per bit of the domain. */
    static constexpr unsigned kBuckets = 65;

    /** Bucket index of @p v: 0 for 0, else floor(log2(v)) + 1. */
    static unsigned
    bucketOf(std::uint64_t v)
    {
        unsigned b = 0;
        while (v) {
            ++b;
            v >>= 1;
        }
        return b;
    }

    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t
    bucketLow(unsigned i)
    {
        return i == 0 ? 0 : std::uint64_t(1) << (i - 1);
    }

    /** Inclusive upper bound of bucket @p i. */
    static std::uint64_t
    bucketHigh(unsigned i)
    {
        return i == 0 ? 0
               : i >= 64
                   ? ~std::uint64_t(0)
                   : (std::uint64_t(1) << i) - 1;
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketOf(v)];
        ++count_;
        sum_ += v;
    }

    /** Total samples. */
    std::uint64_t count() const { return count_; }
    /** Sum of all samples. */
    std::uint64_t sum() const { return sum_; }
    /** Mean sample, 0 when empty. */
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) / count_ : 0.0;
    }
    /** Count in bucket @p i. */
    std::uint64_t bucket(unsigned i) const { return buckets_[i]; }

    /**
     * The @p p-th percentile (p in [0, 100]), reported as the upper
     * bound of the bucket containing that rank — an upper estimate
     * with at most 2x quantization, which is what log2 buckets buy.
     * Returns 0 when empty.
     */
    std::uint64_t
    percentile(double p) const
    {
        if (count_ == 0)
            return 0;
        const double rank = p / 100.0 * static_cast<double>(count_);
        std::uint64_t seen = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            seen += buckets_[i];
            if (static_cast<double>(seen) >= rank && seen > 0)
                return bucketHigh(i);
        }
        return bucketHigh(kBuckets - 1);
    }

    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p95() const { return percentile(95.0); }
    std::uint64_t p99() const { return percentile(99.0); }

    /** Discard all samples. */
    void
    reset()
    {
        std::fill(std::begin(buckets_), std::end(buckets_), 0);
        count_ = 0;
        sum_ = 0;
    }

    /** Accumulate @p other's samples into this histogram. */
    void
    merge(const Log2Histogram &other)
    {
        for (unsigned i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
    }

    /**
     * Emit as a JSON value: {"count", "sum", "mean", "p50", "p95",
     * "p99", "buckets": [[low, count], ...]} with only the non-empty
     * buckets listed. The caller has already emitted the key.
     */
    void dumpJson(json::Writer &w) const;

  private:
    std::uint64_t buckets_[kBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * A named collection of statistics belonging to one simulated object.
 *
 * Stats are registered by pointer; the group does not own them. The
 * owning object must outlive the group's reporting calls (in practice
 * both live in the same structure).
 */
class StatGroup
{
  public:
    /** @param name dotted path of the owning object, e.g. "core0.rob" */
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a counter under @p stat_name. */
    void
    addCounter(const std::string &stat_name, StatCounter *c)
    {
        counters_.emplace(stat_name, c);
    }

    /** Register an average under @p stat_name. */
    void
    addAverage(const std::string &stat_name, StatAverage *a)
    {
        averages_.emplace(stat_name, a);
    }

    /** Group name (dotted path). */
    const std::string &name() const { return name_; }

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Emit this group as `"name": {stat: value, ...}` into an open
     * JSON object scope of @p w (counters as integers, averages as
     * their mean).
     */
    void dumpJson(json::Writer &w) const;

    /** Reset every registered stat. */
    void reset();

    /**
     * Serialize every registered counter and average, keyed by stat
     * name (std::map order, so the byte stream is deterministic).
     */
    void save(snap::Serializer &s) const;

    /**
     * Restore stats saved by save(). The registered stat set must
     * match the saved one (same names, same counts) — a mismatch
     * marks @p d failed, it never partially applies.
     */
    void restore(snap::Deserializer &d);

    /** Access registered counters (for programmatic queries). */
    const std::map<std::string, StatCounter *> &
    counters() const
    {
        return counters_;
    }

    /** Access registered averages (for programmatic queries). */
    const std::map<std::string, StatAverage *> &
    averages() const
    {
        return averages_;
    }

  private:
    std::string name_;
    std::map<std::string, StatCounter *> counters_;
    std::map<std::string, StatAverage *> averages_;
};

} // namespace remap

#endif // REMAP_SIM_STATS_HH
