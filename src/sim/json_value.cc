#include "sim/json_value.hh"

#include <cctype>
#include <cstdlib>
#include <string>

namespace remap::json
{

namespace
{

/** Recursive-descent parser over a string_view with offset errors. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(Value &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (++depth_ > kMaxDepth)
            return fail("nesting too deep");
        bool ok = parseValueInner(out);
        --depth_;
        return ok;
    }

    bool
    parseValueInner(Value &out)
    {
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out.kind = Value::Kind::Null;
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (atEnd() || peek() != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.obj.emplace(std::move(key), std::move(v));
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.arr.push_back(std::move(v));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening '"'
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode (BMP only; the writer never emits
                // surrogate pairs).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (!atEnd() && (peek() == '-' || peek() == '+'))
            ++pos_;
        bool saw_digit = false;
        while (!atEnd()) {
            const char c = peek();
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '-' || c == '+') {
                saw_digit = saw_digit || (c >= '0' && c <= '9');
                ++pos_;
            } else {
                break;
            }
        }
        if (!saw_digit) {
            pos_ = start;
            return fail("expected value");
        }
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        out.num = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            return fail("malformed number");
        }
        out.kind = Value::Kind::Number;
        return true;
    }

    static constexpr unsigned kMaxDepth = 256;

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
    unsigned depth_ = 0;
};

} // namespace

bool
parse(std::string_view text, Value &out, std::string *error)
{
    if (error)
        error->clear();
    out = Value{};
    Parser p(text, error);
    return p.parseDocument(out);
}

} // namespace remap::json
