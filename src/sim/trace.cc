#include "sim/trace.hh"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "sim/json.hh"

namespace remap::trace
{

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Core:      return "core";
      case Category::Fabric:    return "fabric";
      case Category::Queue:     return "queue";
      case Category::Barrier:   return "barrier";
      case Category::Migration: return "migration";
      case Category::Host:      return "host";
    }
    return "unknown";
}

Tracer::~Tracer()
{
    close();
}

bool
Tracer::open(const std::string &path, std::uint32_t pid)
{
    close();
    out_.open(path, std::ios::out | std::ios::trunc);
    if (!out_.is_open())
        return false;
    path_ = path;
    pid_ = pid;
    events_ = 0;
    first_ = true;
    out_ << "{\"traceEvents\":[\n";
    return true;
}

void
Tracer::close()
{
    if (!out_.is_open())
        return;
    out_ << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":"
            "{\"tool\":\"remap\",\"clock\":\"simulated core cycles\","
            "\"ts_unit\":\"cycle\"}}\n";
    out_.close();
}

void
Tracer::prefix(Category cat, const char *name, char ph,
               std::uint32_t tid, Cycle ts)
{
    if (!first_)
        out_ << ",\n";
    first_ = false;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                  "\"ts\":%" PRIu64 ",\"pid\":%u,\"tid\":%u",
                  name, categoryName(cat), ph,
                  static_cast<std::uint64_t>(ts), pid_, tid);
    out_ << buf;
}

void
Tracer::writeArgs(std::initializer_list<Arg> args)
{
    if (args.size() == 0)
        return;
    out_ << ",\"args\":{";
    bool first = true;
    for (const Arg &a : args) {
        if (!first)
            out_ << ',';
        first = false;
        json::writeEscaped(out_, a.key);
        out_ << ':';
        if (a.kind == Arg::Kind::Str) {
            json::writeEscaped(out_, a.str ? a.str : "");
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.12g", a.num);
            out_ << buf;
        }
    }
    out_ << '}';
}

void
Tracer::finish()
{
    out_ << '}';
    ++events_;
}

void
Tracer::processName(const std::string &name)
{
    if (!enabled())
        return;
    prefix(Category::Core, "process_name", 'M', 0, 0);
    out_ << ",\"args\":{\"name\":";
    json::writeEscaped(out_, name);
    out_ << '}';
    finish();
}

void
Tracer::threadName(std::uint32_t tid, const std::string &name)
{
    if (!enabled())
        return;
    prefix(Category::Core, "thread_name", 'M', tid, 0);
    out_ << ",\"args\":{\"name\":";
    json::writeEscaped(out_, name);
    out_ << '}';
    finish();
}

void
Tracer::complete(Category cat, const char *name, std::uint32_t tid,
                 Cycle start, Cycle dur,
                 std::initializer_list<Arg> args)
{
    if (!enabled())
        return;
    prefix(cat, name, 'X', tid, start);
    out_ << ",\"dur\":" << dur;
    writeArgs(args);
    finish();
}

void
Tracer::instant(Category cat, const char *name, std::uint32_t tid,
                Cycle ts, std::initializer_list<Arg> args)
{
    if (!enabled())
        return;
    prefix(cat, name, 'i', tid, ts);
    out_ << ",\"s\":\"t\""; // thread-scoped instant
    writeArgs(args);
    finish();
}

void
Tracer::counter(Category cat, const char *name, std::uint32_t tid,
                Cycle ts, std::initializer_list<Arg> series)
{
    if (!enabled())
        return;
    prefix(cat, name, 'C', tid, ts);
    writeArgs(series);
    finish();
}

void
Tracer::flowBegin(Category cat, const char *name, std::uint32_t tid,
                  Cycle ts, std::uint64_t flow_id)
{
    if (!enabled())
        return;
    prefix(cat, name, 's', tid, ts);
    out_ << ",\"id\":" << flow_id;
    finish();
}

void
Tracer::flowEnd(Category cat, const char *name, std::uint32_t tid,
                Cycle ts, std::uint64_t flow_id)
{
    if (!enabled())
        return;
    prefix(cat, name, 'f', tid, ts);
    // bp:e binds the arrow head to the enclosing slice at ts.
    out_ << ",\"id\":" << flow_id << ",\"bp\":\"e\"";
    finish();
}

std::string
uniqueTracePath(const std::string &base)
{
    static std::atomic<std::uint64_t> next{0};
    const std::uint64_t n =
        next.fetch_add(1, std::memory_order_relaxed);
    if (n == 0)
        return base;
    const std::size_t slash = base.find_last_of('/');
    const std::size_t dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + "." + std::to_string(n);
    return base.substr(0, dot) + "." + std::to_string(n) +
           base.substr(dot);
}

} // namespace remap::trace
