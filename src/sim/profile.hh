/**
 * @file
 * Host-time profiling: RAII scoped timers that attribute wall-clock
 * nanoseconds to the simulator's major phases, aggregated into
 * per-phase log2 histograms with percentile accessors.
 *
 * Design constraints (mirroring the Tracer, DESIGN.md §12):
 *  - Pure observation: the profiler reads the host clock only, never
 *    simulator state, so simulated cycles, statistics and energy are
 *    bit-identical with profiling on or off (enforced by
 *    tests/test_profile.cc).
 *  - Near-zero cost when disabled: every instrumentation site guards
 *    on a raw `Profiler *` that is null unless REMAP_PROFILE was set
 *    (or System::enableProfiling() called), so the off path is one
 *    predictable branch — the same pattern the Tracer uses.
 *  - One Profiler per System: the parallel harness runs many Systems
 *    concurrently; each owns its own Profiler, so the per-tick record
 *    path needs no synchronization. Per-System profiles are merged
 *    into the process-wide aggregate (mutex-guarded, batch-scale)
 *    when a region run finishes.
 */

#ifndef REMAP_SIM_PROFILE_HH
#define REMAP_SIM_PROFILE_HH

#include <chrono>
#include <cstdint>

#include "sim/stats.hh"

namespace remap::prof
{

/** The instrumented simulation phases. Phases may nest: CacheAccess
 *  time is also inside the pipeline phase that issued the access, and
 *  Barrier time is inside FabricTick — each phase answers "where does
 *  host time go" for its own layer, they are not disjoint. */
enum class Phase : std::uint8_t
{
    FetchDecode,     ///< Core fetch (incl. fused-run stepping)
    IssueExecute,    ///< Core issue + dispatch walks
    WritebackCommit, ///< Core writeback + commit walks
    CacheAccess,     ///< MemSystem::access (timed hierarchy)
    FabricTick,      ///< SPL fabric ticks in the run loop
    Barrier,         ///< BarrierUnit arrivals/releases
    LeapScan,        ///< event-horizon computation in the run loop
    SnapshotSave,    ///< System::save
    SnapshotRestore, ///< System::restore
    JobDispatch,     ///< JobPool job bodies (whole region runs)
};

/** Number of Phase values. */
inline constexpr unsigned kNumPhases = 10;

/** Stable lower_snake name of @p p (JSON keys, trace series). */
const char *phaseName(Phase p);

/** True when REMAP_PROFILE is set in the environment (cached after
 *  the first call; per-System enabling reads the env directly so
 *  tests can toggle it between constructions). */
bool envEnabled();

/** Monotonic host clock reading in nanoseconds. */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Per-phase host-time aggregation: event count, total nanoseconds
 * (both StatCounters, so the CounterSampler can plot them as Chrome
 * trace counter tracks) and a log2 histogram of per-event durations
 * with p50/p95/p99 accessors.
 */
class Profiler
{
  public:
    /** Attribute @p ns nanoseconds to @p p. */
    void
    record(Phase p, std::uint64_t ns)
    {
        PhaseStats &ps = phases_[static_cast<unsigned>(p)];
        ++ps.count;
        ps.totalNs += ns;
        ps.hist.sample(ns);
    }

    /** Events recorded for @p p. */
    const StatCounter &
    count(Phase p) const
    {
        return phases_[static_cast<unsigned>(p)].count;
    }
    /** Total nanoseconds attributed to @p p (sampler-friendly). */
    const StatCounter &
    totalNs(Phase p) const
    {
        return phases_[static_cast<unsigned>(p)].totalNs;
    }
    /** Duration distribution of @p p. */
    const Log2Histogram &
    histogram(Phase p) const
    {
        return phases_[static_cast<unsigned>(p)].hist;
    }

    /** Total nanoseconds in @p p as milliseconds. */
    double
    totalMs(Phase p) const
    {
        return static_cast<double>(totalNs(p).value()) / 1e6;
    }

    /** Accumulate @p other into this profiler. */
    void merge(const Profiler &other);

    /** Discard everything. */
    void reset();

    /**
     * Emit as a JSON value: one sub-object per phase with recorded
     * events — {"count", "total_ns", "p50_ns", "p95_ns", "p99_ns",
     * "hist": {...}}. The caller has already emitted the key.
     */
    void dumpJson(json::Writer &w) const;

    /** One "phase count total_ms p50/p95/p99" line per active phase
     *  (human-readable summaries for bench drivers). */
    void dump(std::ostream &os) const;

  private:
    struct PhaseStats
    {
        StatCounter count;
        StatCounter totalNs;
        Log2Histogram hist;
    };
    PhaseStats phases_[kNumPhases];
};

/**
 * The process-wide aggregate profiler: per-System profiles are merged
 * in when region runs finish, and the JobPool records whole-job
 * dispatch spans directly. All access is mutex-guarded — callers are
 * batch-scale (per region run / per job), never per-tick.
 */
void mergeIntoProcess(const Profiler &p);
/** Record one span directly into the process aggregate. */
void recordProcess(Phase p, std::uint64_t ns);
/** Copy the current process aggregate (for reporting). */
Profiler processSnapshot();

/**
 * RAII span: records the scope's wall time into @p p under @p phase.
 * A null profiler makes construction and destruction a single
 * predictable branch each — the instrumentation sites stay in the
 * hot loops unconditionally.
 */
class ScopedTimer
{
  public:
    ScopedTimer(Profiler *p, Phase phase) : p_(p), phase_(phase)
    {
        if (p_)
            start_ = nowNs();
    }
    ~ScopedTimer()
    {
        if (p_)
            p_->record(phase_, nowNs() - start_);
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Profiler *p_;
    Phase phase_;
    std::uint64_t start_ = 0;
};

/**
 * Meta-stats JSON hooks: process-wide singletons living above the
 * core layer (the harness SnapshotCache) register a dumper here so
 * System::dumpStatsJson can include their stats in the "sim" subtree
 * without a core-on-harness dependency. @p fn must emit exactly one
 * JSON value. Re-registering a key replaces the hook.
 */
void setMetaJsonHook(const char *key, void (*fn)(json::Writer &));

/** Emit `key: value` for every registered hook into an open JSON
 *  object scope of @p w. */
void dumpMetaHooks(json::Writer &w);

} // namespace remap::prof

#endif // REMAP_SIM_PROFILE_HH
