/**
 * @file
 * Minimal streaming JSON writer shared by the tracer, the stats
 * exporter, the run-manifest emitter and the benchmark baseline
 * writer. Comma placement and string escaping are handled here so
 * every producer emits syntactically valid JSON by construction.
 *
 * The writer is deliberately tiny: objects/arrays are opened and
 * closed explicitly, keys and values are emitted in order, and the
 * caller is responsible for pairing begin/end calls (REMAP_ASSERT
 * catches mismatches).
 */

#ifndef REMAP_SIM_JSON_HH
#define REMAP_SIM_JSON_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

#include "sim/logging.hh"

namespace remap::json
{

/** Escape @p s into @p os as a quoted JSON string. */
inline void
writeEscaped(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Streaming writer over an externally-owned ostream. */
class Writer
{
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    Writer &
    beginObject()
    {
        comma();
        os_ << '{';
        stack_.push_back(true);
        return *this;
    }

    Writer &
    endObject()
    {
        REMAP_ASSERT(!stack_.empty(), "endObject with no open scope");
        stack_.pop_back();
        os_ << '}';
        return *this;
    }

    Writer &
    beginArray()
    {
        comma();
        os_ << '[';
        stack_.push_back(true);
        return *this;
    }

    Writer &
    endArray()
    {
        REMAP_ASSERT(!stack_.empty(), "endArray with no open scope");
        stack_.pop_back();
        os_ << ']';
        return *this;
    }

    Writer &
    key(std::string_view k)
    {
        comma();
        writeEscaped(os_, k);
        os_ << ':';
        pendingValue_ = true;
        return *this;
    }

    Writer &
    value(std::string_view v)
    {
        comma();
        writeEscaped(os_, v);
        return *this;
    }

    Writer &value(const char *v) { return value(std::string_view(v)); }

    Writer &
    value(double v)
    {
        comma();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        os_ << buf;
        return *this;
    }

    Writer &
    value(std::uint64_t v)
    {
        comma();
        os_ << v;
        return *this;
    }

    Writer &
    value(std::int64_t v)
    {
        comma();
        os_ << v;
        return *this;
    }

    Writer &value(int v) { return value(std::int64_t(v)); }
    Writer &value(unsigned v) { return value(std::uint64_t(v)); }

    /**
     * Round-trip-exact double: 17 significant digits recover the
     * exact IEEE-754 value through strtod (the json_value.hh
     * parser). Used where a consumer re-ingests the number and must
     * see the producer's bits (result store, service protocol);
     * value(double)'s %.12g stays the default for display-grade
     * output.
     */
    Writer &
    valueExact(double v)
    {
        comma();
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        os_ << buf;
        return *this;
    }

    /** Shorthand for key(k).valueExact(v). */
    Writer &
    kvExact(std::string_view k, double v)
    {
        key(k);
        return valueExact(v);
    }

    Writer &
    value(bool v)
    {
        comma();
        os_ << (v ? "true" : "false");
        return *this;
    }

    Writer &
    nullValue()
    {
        comma();
        os_ << "null";
        return *this;
    }

    /** Shorthand for key(k).value(v). */
    template <typename T>
    Writer &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

  private:
    /** Emit a separating comma unless this is a scope's first item
     *  or the value completing a pending key. */
    void
    comma()
    {
        if (pendingValue_) {
            pendingValue_ = false;
            return;
        }
        if (stack_.empty())
            return;
        if (stack_.back())
            stack_.back() = false;
        else
            os_ << ',';
    }

    std::ostream &os_;
    std::vector<bool> stack_; ///< per-scope "no items yet" flag
    bool pendingValue_ = false;
};

} // namespace remap::json

#endif // REMAP_SIM_JSON_HH
