/**
 * @file
 * BoundedRing — a fixed-capacity FIFO ring over a pre-allocated
 * slot pool.
 *
 * The core pipeline queues (fetch buffer, ROB) have hard
 * architectural bounds (`fetchBufferEntries`, `robEntries`) that the
 * pipeline already enforces before every push, yet they were backed
 * by std::deque, which allocates and frees chunk nodes as the
 * windows breathe. BoundedRing allocates all slots once at
 * construction and then recycles them — push_back/pop_front are a
 * couple of index operations and never touch the allocator, and
 * operator[] is O(1), which keeps `findBySeq` (seq-offset indexing
 * into the ROB) cheap.
 *
 * Only the deque surface the pipeline actually uses is provided:
 * front/back/operator[]/push_back/pop_front/clear/size/empty plus
 * forward iteration.
 */

#ifndef REMAP_SIM_BOUNDED_RING_HH
#define REMAP_SIM_BOUNDED_RING_HH

#include <cstddef>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"

namespace remap
{

template <typename T>
class BoundedRing
{
  public:
    BoundedRing() = default;
    explicit BoundedRing(std::size_t capacity) { reset(capacity); }

    /** (Re)allocate the slot pool for @p capacity and empty it. */
    void
    reset(std::size_t capacity)
    {
        REMAP_ASSERT(capacity > 0, "BoundedRing needs capacity > 0");
        slots_.assign(capacity, T{});
        head_ = 0;
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == slots_.size(); }

    /** Drop all entries; the slot pool stays allocated. */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    T &
    operator[](std::size_t i)
    {
        return slots_[wrap(head_ + i)];
    }

    const T &
    operator[](std::size_t i) const
    {
        return slots_[wrap(head_ + i)];
    }

    T &front() { return (*this)[0]; }
    const T &front() const { return (*this)[0]; }
    T &back() { return (*this)[size_ - 1]; }
    const T &back() const { return (*this)[size_ - 1]; }

    void
    push_back(const T &v)
    {
        REMAP_ASSERT(size_ < slots_.size(), "BoundedRing overflow");
        slots_[wrap(head_ + size_)] = v;
        ++size_;
    }

    void
    pop_front()
    {
        REMAP_ASSERT(size_ > 0, "BoundedRing underflow");
        head_ = wrap(head_ + 1);
        --size_;
    }

    template <bool Const>
    class Iter
    {
      public:
        using ring_t =
            std::conditional_t<Const, const BoundedRing, BoundedRing>;
        using ref_t = std::conditional_t<Const, const T &, T &>;

        Iter(ring_t *r, std::size_t i) : ring_(r), idx_(i) {}

        ref_t operator*() const { return (*ring_)[idx_]; }
        auto *operator->() const { return &(*ring_)[idx_]; }

        Iter &
        operator++()
        {
            ++idx_;
            return *this;
        }

        bool
        operator==(const Iter &o) const
        {
            return idx_ == o.idx_;
        }

        bool
        operator!=(const Iter &o) const
        {
            return idx_ != o.idx_;
        }

      private:
        ring_t *ring_;
        std::size_t idx_;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, size_}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

  private:
    /** Wrap a logical slot index into the pool (capacity need not be
     *  a power of two; the caller guarantees i < 2 * capacity). */
    std::size_t
    wrap(std::size_t i) const
    {
        return i >= slots_.size() ? i - slots_.size() : i;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace remap

#endif // REMAP_SIM_BOUNDED_RING_HH
