#include "sim/snapshot.hh"

namespace remap::snap
{

void
writeHeader(Serializer &s, std::uint64_t config_hash,
            std::uint64_t boundary_cycle)
{
    s.bytes(magic, sizeof(magic));
    s.u32(formatVersion);
    s.u64(config_hash);
    s.u64(boundary_cycle);
}

bool
readHeader(Deserializer &d, Header *out)
{
    std::uint8_t m[sizeof(magic)] = {};
    if (!d.bytes(m, sizeof(m)) ||
        std::memcmp(m, magic, sizeof(magic)) != 0) {
        d.fail("bad magic");
        return false;
    }
    out->version = d.u32();
    if (out->version != formatVersion) {
        d.fail("format version mismatch");
        return false;
    }
    out->configHash = d.u64();
    out->boundaryCycle = d.u64();
    return d.ok();
}

} // namespace remap::snap
