/**
 * @file
 * Deterministic pseudo-random number generation for workload input
 * synthesis. A fixed-seed xoshiro256** keeps every experiment
 * reproducible across runs and platforms.
 */

#ifndef REMAP_SIM_RNG_HH
#define REMAP_SIM_RNG_HH

#include <cstdint>

#include "sim/snapshot.hh"

namespace remap
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    /** Seed every fixed-input experiment uses (recorded in run
     *  manifests so results are attributable to their inputs). */
    static constexpr std::uint64_t defaultSeed =
        0x9e3779b97f4a7c15ULL;

    /** Seed via splitmix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = defaultSeed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Serialize generator state (snapshot support). */
    void
    save(snap::Serializer &s) const
    {
        s.section("rng");
        for (std::uint64_t word : state_)
            s.u64(word);
    }

    /** Restore generator state saved by save(). */
    void
    restore(snap::Deserializer &d)
    {
        d.section("rng");
        for (auto &word : state_)
            word = d.u64();
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace remap

#endif // REMAP_SIM_RNG_HH
