/**
 * @file
 * Versioned, dependency-free binary serialization for simulator
 * checkpoints (see DESIGN.md section 9).
 *
 * Every stateful component implements
 *
 *     void save(snap::Serializer &s) const;
 *     void restore(snap::Deserializer &d);
 *
 * Only *dynamic* state is serialized. Structure — configurations,
 * programs, SPL functions, thread creation and initial placement — is
 * rebuilt deterministically by re-running the workload factory, after
 * which restore() overwrites the dynamic state in place (the gem5 /
 * SESC checkpointing discipline). This keeps snapshots small, makes
 * the format independent of pointer identity, and lets a single
 * format version cover every component.
 *
 * Format rules:
 *  - little-endian, fixed-width integers; doubles as their bit
 *    pattern;
 *  - every component opens a section marker (a tag hash), so a
 *    corrupt or misaligned stream fails loudly at the next section
 *    instead of silently misreading;
 *  - unordered containers are serialized in sorted key order so the
 *    byte stream is deterministic (serialize(x) is a canonical form:
 *    two states that behave identically serialize identically);
 *  - Deserializer never throws and never reads past the end: any
 *    error sets a sticky failure flag, subsequent reads return
 *    zeros, and the caller checks ok() once at the end. Corrupt
 *    input must never be trusted (snapshots may come from disk).
 *
 * Versioning policy: formatVersion bumps on ANY layout change — there
 * are no per-section versions and no migration of old snapshots. A
 * snapshot is a pure cache of recomputable state, so stale versions
 * are simply discarded (SnapshotCache treats them as misses).
 */

#ifndef REMAP_SIM_SNAPSHOT_HH
#define REMAP_SIM_SNAPSHOT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace remap::snap
{

/** Bump on any serialized-layout change (see versioning policy). */
inline constexpr std::uint32_t formatVersion = 2;

/** Leading magic of every snapshot blob/file. */
inline constexpr std::uint8_t magic[8] = {'R', 'M', 'A', 'P',
                                          'C', 'K', 'P', 'T'};

/** FNV-1a 64-bit hasher used for config-hashes and section tags. */
class Hasher
{
  public:
    static constexpr std::uint64_t offsetBasis =
        0xcbf29ce484222325ULL;
    static constexpr std::uint64_t prime = 0x100000001b3ULL;

    /** Mix raw bytes. */
    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= prime;
        }
    }

    /** Mix one 64-bit value (canonical little-endian bytes). */
    void
    u64(std::uint64_t v)
    {
        std::uint8_t buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = std::uint8_t(v >> (8 * i));
        bytes(buf, 8);
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void u32(std::uint32_t v) { u64(v); }
    void boolean(bool v) { u64(v ? 1 : 0); }

    /** Mix a double's bit pattern. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    /** Mix a length-prefixed string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    /** Current digest. */
    std::uint64_t value() const { return h_; }

    /** One-shot hash of a C string (for section tags). */
    static std::uint64_t
    of(const char *s)
    {
        Hasher h;
        h.bytes(s, std::strlen(s));
        return h.value();
    }

  private:
    std::uint64_t h_ = offsetBasis;
};

/** Append-only little-endian binary writer. */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(std::uint8_t(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(std::uint8_t(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    bytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + n);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }

    /** Open a named section: writes the tag hash as a sync marker. */
    void section(const char *tag) { u64(Hasher::of(tag)); }

    /** The serialized bytes so far. */
    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    /** Move the serialized bytes out. */
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    /** Bytes written so far. */
    std::size_t size() const { return buf_.size(); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Bounds-checked little-endian reader over an untrusted byte range.
 * Never throws; failures are sticky and reads-after-failure return
 * zero. Check ok() (and optionally atEnd()) after restoring.
 */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Deserializer(const std::vector<std::uint8_t> &buf)
        : Deserializer(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    bool boolean() { return u8() != 0; }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    bool
    bytes(void *out, std::size_t n)
    {
        if (!need(n)) {
            std::memset(out, 0, n);
            return false;
        }
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
        return true;
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      n);
        pos_ += n;
        return s;
    }

    /**
     * Read a container size that the caller will then loop over.
     * Guards against a corrupt huge count by checking that at least
     * @p min_elem_bytes * count bytes remain, so a flipped length
     * byte cannot drive an attacker-sized allocation or a
     * billion-iteration loop.
     */
    std::uint32_t
    count(std::size_t min_elem_bytes = 1)
    {
        const std::uint32_t n = u32();
        if (failed_)
            return 0;
        if (min_elem_bytes > 0 &&
            n > (size_ - pos_) / min_elem_bytes) {
            fail("implausible element count");
            return 0;
        }
        return n;
    }

    /** Consume and verify a section marker written by
     *  Serializer::section(). Mismatch fails the whole restore. */
    bool
    section(const char *tag)
    {
        const std::uint64_t want = Hasher::of(tag);
        if (u64() != want && !failed_)
            fail(tag);
        return !failed_;
    }

    /** Mark the stream as corrupt: all subsequent reads return 0. */
    void
    fail(const char *why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why;
            errorPos_ = pos_;
        }
    }

    /** True while no failure has been recorded. */
    bool ok() const { return !failed_; }
    /** The first recorded failure reason (empty when ok). */
    const char *error() const { return failed_ ? error_ : ""; }
    /** Byte offset of the first failure. */
    std::size_t errorPos() const { return errorPos_; }
    /** True when every byte has been consumed. */
    bool atEnd() const { return pos_ == size_; }
    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

  private:
    bool
    need(std::size_t n)
    {
        if (failed_)
            return false;
        if (size_ - pos_ < n) {
            fail("truncated stream");
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    const char *error_ = "";
    std::size_t errorPos_ = 0;
};

/**
 * Prepend the snapshot container header to @p s:
 * magic, format version, config-hash, boundary cycle. readHeader()
 * is the load-side gate — corrupt or stale blobs are rejected there
 * and never reach component restore code.
 */
void writeHeader(Serializer &s, std::uint64_t config_hash,
                 std::uint64_t boundary_cycle);

/** Parsed snapshot container header. */
struct Header
{
    std::uint32_t version = 0;
    std::uint64_t configHash = 0;
    std::uint64_t boundaryCycle = 0;
};

/**
 * Validate magic + version and parse the header. @return false (with
 * @p d failed) on any mismatch; the caller treats that as a cache
 * miss, never as an error.
 */
bool readHeader(Deserializer &d, Header *out);

} // namespace remap::snap

#endif // REMAP_SIM_SNAPSHOT_HH
