#include "sim/stats.hh"

#include "sim/json.hh"

namespace remap
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, counter] : counters_)
        os << name_ << '.' << stat_name << ' ' << counter->value()
           << '\n';
    for (const auto &[stat_name, avg] : averages_)
        os << name_ << '.' << stat_name << ' ' << avg->mean() << '\n';
}

void
StatGroup::dumpJson(json::Writer &w) const
{
    w.key(name_);
    w.beginObject();
    for (const auto &[stat_name, counter] : counters_)
        w.kv(stat_name, counter->value());
    for (const auto &[stat_name, avg] : averages_)
        w.kv(stat_name, avg->mean());
    w.endObject();
}

void
StatGroup::reset()
{
    for (auto &[stat_name, counter] : counters_)
        counter->reset();
    for (auto &[stat_name, avg] : averages_)
        avg->reset();
}

} // namespace remap
