#include "sim/stats.hh"

namespace remap
{

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, counter] : counters_)
        os << name_ << '.' << stat_name << ' ' << counter->value()
           << '\n';
    for (const auto &[stat_name, avg] : averages_)
        os << name_ << '.' << stat_name << ' ' << avg->mean() << '\n';
}

void
StatGroup::reset()
{
    for (auto &[stat_name, counter] : counters_)
        counter->reset();
    for (auto &[stat_name, avg] : averages_)
        avg->reset();
}

} // namespace remap
