#include "sim/stats.hh"

#include "sim/json.hh"

namespace remap
{

void
Log2Histogram::dumpJson(json::Writer &w) const
{
    w.beginObject();
    w.kv("count", count_);
    w.kv("sum", sum_);
    w.kv("mean", mean());
    w.kv("p50", p50());
    w.kv("p95", p95());
    w.kv("p99", p99());
    w.key("buckets");
    w.beginArray();
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        w.beginArray();
        w.value(bucketLow(i));
        w.value(buckets_[i]);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, counter] : counters_)
        os << name_ << '.' << stat_name << ' ' << counter->value()
           << '\n';
    for (const auto &[stat_name, avg] : averages_)
        os << name_ << '.' << stat_name << ' ' << avg->mean() << '\n';
}

void
StatGroup::dumpJson(json::Writer &w) const
{
    w.key(name_);
    w.beginObject();
    for (const auto &[stat_name, counter] : counters_)
        w.kv(stat_name, counter->value());
    for (const auto &[stat_name, avg] : averages_)
        w.kv(stat_name, avg->mean());
    w.endObject();
}

void
StatGroup::reset()
{
    for (auto &[stat_name, counter] : counters_)
        counter->reset();
    for (auto &[stat_name, avg] : averages_)
        avg->reset();
}

void
StatGroup::save(snap::Serializer &s) const
{
    s.section("statgroup");
    s.str(name_);
    s.u32(static_cast<std::uint32_t>(counters_.size()));
    for (const auto &[stat_name, counter] : counters_) {
        s.str(stat_name);
        counter->save(s);
    }
    s.u32(static_cast<std::uint32_t>(averages_.size()));
    for (const auto &[stat_name, avg] : averages_) {
        s.str(stat_name);
        avg->save(s);
    }
}

void
StatGroup::restore(snap::Deserializer &d)
{
    if (!d.section("statgroup"))
        return;
    if (d.str() != name_) {
        d.fail("stat group name mismatch");
        return;
    }
    if (d.count() != counters_.size()) {
        d.fail("stat counter set mismatch");
        return;
    }
    for (auto &[stat_name, counter] : counters_) {
        if (d.str() != stat_name) {
            d.fail("stat counter name mismatch");
            return;
        }
        counter->restore(d);
    }
    if (d.count() != averages_.size()) {
        d.fail("stat average set mismatch");
        return;
    }
    for (auto &[stat_name, avg] : averages_) {
        if (d.str() != stat_name) {
            d.fail("stat average name mismatch");
            return;
        }
        avg->restore(d);
    }
}

} // namespace remap
