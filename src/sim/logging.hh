/**
 * @file
 * gem5-style logging and error-termination helpers.
 *
 * panic() is for simulator bugs (aborts); fatal() is for user/config
 * errors (clean exit); warn()/inform() report conditions without
 * stopping the simulation.
 */

#ifndef REMAP_SIM_LOGGING_HH
#define REMAP_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace remap
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Set this thread's log context, prefixed to every warn()/inform()
 * message as "[ctx]". The parallel harness tags worker threads with
 * the active worker/job so batched-simulation logs attribute cleanly;
 * an empty string clears the prefix.
 */
void setLogContext(std::string ctx);

/** This thread's current log context (empty when unset). */
const std::string &logContext();

/** RAII helper restoring the previous log context on scope exit. */
class ScopedLogContext
{
  public:
    explicit ScopedLogContext(std::string ctx);
    ~ScopedLogContext();

    ScopedLogContext(const ScopedLogContext &) = delete;
    ScopedLogContext &operator=(const ScopedLogContext &) = delete;

  private:
    std::string prev_;
};

/**
 * Abort the simulation due to an internal simulator bug.
 * Mirrors gem5's panic(): something happened that should never happen
 * regardless of user input.
 */
#define REMAP_PANIC(...) \
    ::remap::detail::panicImpl(__FILE__, __LINE__, \
        ::remap::detail::formatString(__VA_ARGS__))

/**
 * Terminate the simulation due to a user error (bad configuration,
 * invalid workload, etc.). Mirrors gem5's fatal().
 */
#define REMAP_FATAL(...) \
    ::remap::detail::fatalImpl(__FILE__, __LINE__, \
        ::remap::detail::formatString(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define REMAP_WARN(...) \
    ::remap::detail::warnImpl(::remap::detail::formatString(__VA_ARGS__))

/** Report normal operating status. */
#define REMAP_INFORM(...) \
    ::remap::detail::informImpl(::remap::detail::formatString(__VA_ARGS__))

/** Invariant check that panics (not asserts) so it fires in release. */
#define REMAP_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            REMAP_PANIC("assertion failed: %s", #cond); \
        } \
    } while (0)

} // namespace remap

#endif // REMAP_SIM_LOGGING_HH
