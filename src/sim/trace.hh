/**
 * @file
 * Structured event tracing in the Chrome trace-event JSON format
 * (loadable in Perfetto or chrome://tracing).
 *
 * A Tracer serializes duration ("X"), instant ("i"), counter ("C")
 * and flow ("s"/"f") events plus metadata records into one JSON file.
 * Timestamps are simulated core cycles written into the `ts` field
 * (the viewers display them as microseconds; 1 us == 1 cycle).
 *
 * Design constraints (see DESIGN.md section 8):
 *  - Pure observation: instrumentation only reads simulator state, so
 *    simulated cycles, stats and energy are bit-identical with
 *    tracing on or off.
 *  - Near-zero cost when disabled: every instrumentation site guards
 *    on a raw `Tracer *` that is null unless tracing was requested,
 *    so the off path is a single predictable branch.
 *  - One Tracer per System: the parallel harness runs many Systems
 *    concurrently, each writing its own file (uniqueTracePath()
 *    suffixes the REMAP_TRACE path per instance), so no cross-thread
 *    synchronization is needed on the emission path.
 */

#ifndef REMAP_SIM_TRACE_HH
#define REMAP_SIM_TRACE_HH

#include <cstdint>
#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace remap::trace
{

/** Event categories, matching the paper's evaluation dimensions. */
enum class Category : std::uint8_t
{
    Core,      ///< pipeline-level events (SPL stall spans, ...)
    Fabric,    ///< SPL initiations, virtualization, sharing
    Queue,     ///< per-core input/output queue depths
    Barrier,   ///< barrier arrive -> release activity
    Migration, ///< thread migrations between cores
    Host,      ///< host-time profiling counter tracks
};

/** The `cat` string for @p c. */
const char *categoryName(Category c);

/** One optional key/value argument attached to an event. */
struct Arg
{
    const char *key;
    enum class Kind : std::uint8_t { Num, Str } kind;
    double num = 0.0;
    const char *str = nullptr;

    Arg(const char *k, double v) : key(k), kind(Kind::Num), num(v) {}
    Arg(const char *k, std::uint64_t v)
        : key(k), kind(Kind::Num), num(static_cast<double>(v))
    {
    }
    Arg(const char *k, unsigned v)
        : key(k), kind(Kind::Num), num(v)
    {
    }
    Arg(const char *k, const char *v)
        : key(k), kind(Kind::Str), str(v)
    {
    }
};

/** Writes one Chrome trace-event JSON file. Not thread-safe: each
 *  simulated System owns (at most) one Tracer. */
class Tracer
{
  public:
    Tracer() = default;
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Start tracing into @p path. @p pid becomes the `pid` of every
     * event (the harness uses the System instance number).
     * @return false (tracing stays disabled) when the file cannot be
     * opened.
     */
    bool open(const std::string &path, std::uint32_t pid = 0);

    /** Write the footer and close the file (idempotent). */
    void close();

    /** True while a trace file is open. */
    bool enabled() const { return out_.is_open(); }

    /** Path given to open(), for diagnostics. */
    const std::string &path() const { return path_; }

    /** Events emitted so far (metadata included). */
    std::uint64_t eventCount() const { return events_; }

    /** @{ @name Metadata records. */
    void processName(const std::string &name);
    void threadName(std::uint32_t tid, const std::string &name);
    /** @} */

    /** Duration event: @p name spans [@p start, @p start + @p dur]. */
    void complete(Category cat, const char *name, std::uint32_t tid,
                  Cycle start, Cycle dur,
                  std::initializer_list<Arg> args = {});

    /** Instant event at @p ts. */
    void instant(Category cat, const char *name, std::uint32_t tid,
                 Cycle ts, std::initializer_list<Arg> args = {});

    /** Counter event: each arg becomes one plotted series. */
    void counter(Category cat, const char *name, std::uint32_t tid,
                 Cycle ts, std::initializer_list<Arg> series);

    /** Flow start (arrow tail) with correlation id @p flow_id. */
    void flowBegin(Category cat, const char *name, std::uint32_t tid,
                   Cycle ts, std::uint64_t flow_id);

    /** Flow finish (arrow head) with correlation id @p flow_id. */
    void flowEnd(Category cat, const char *name, std::uint32_t tid,
                 Cycle ts, std::uint64_t flow_id);

  private:
    /** Write the shared `{"name":...,"cat":...,"ph":...}` prefix. */
    void prefix(Category cat, const char *name, char ph,
                std::uint32_t tid, Cycle ts);
    void writeArgs(std::initializer_list<Arg> args);
    void finish();

    std::ofstream out_;
    std::string path_;
    std::uint32_t pid_ = 0;
    std::uint64_t events_ = 0;
    bool first_ = true;
};

/**
 * Periodic counter sampling: a list of (track, series, StatCounter)
 * registrations snapshotted into counter events every sample period.
 * Registered by System when tracing is enabled; the run loop calls
 * sample() every REMAP_TRACE_PERIOD simulated cycles.
 */
class CounterSampler
{
  public:
    /** Register @p c to be sampled as @p series on track @p name. */
    void
    add(Category cat, std::string name, std::uint32_t tid,
        std::string series, const StatCounter *c)
    {
        entries_.push_back(Entry{cat, std::move(name), tid,
                                 std::move(series), c});
    }

    /** Emit one counter event per registration at @p now. */
    void
    sample(Tracer &t, Cycle now) const
    {
        for (const Entry &e : entries_) {
            t.counter(e.cat, e.name.c_str(), e.tid, now,
                      {Arg{e.series.c_str(),
                           static_cast<double>(e.counter->value())}});
        }
    }

    bool empty() const { return entries_.empty(); }

  private:
    struct Entry
    {
        Category cat;
        std::string name;
        std::uint32_t tid;
        std::string series;
        const StatCounter *counter;
    };
    std::vector<Entry> entries_;
};

/**
 * Derive a per-instance trace path from the REMAP_TRACE base path:
 * the first caller gets @p base unchanged, instance N gets
 * "base-stem.N.ext". Uses a process-wide atomic counter so
 * concurrently-constructed Systems never share a file.
 */
std::string uniqueTracePath(const std::string &base);

} // namespace remap::trace

#endif // REMAP_SIM_TRACE_HH
