#include "sim/sampling.hh"

#include <algorithm>
#include <cmath>

namespace remap::sampling
{

SampleParams
SampleParams::resolvedAdaptive() const
{
    SampleParams r = *this;
    if (r.window == 0)
        r.window = defaults().window;
    if (r.warm == 0)
        r.warm = defaults().warm;
    if (r.minPeriod == 0)
        r.minPeriod = kDefaultMinPeriod;
    if (r.maxPeriod == 0)
        r.maxPeriod = kDefaultMaxPeriod;
    // A period shorter than warm+window has no functional-warming
    // span at all; the clamps can never request one.
    r.minPeriod = std::max(r.minPeriod, r.warm + r.window);
    r.maxPeriod = std::max(r.maxPeriod, r.minPeriod);
    if (r.period == 0)
        r.period = r.maxPeriod;
    r.period = std::clamp(r.period, r.minPeriod, r.maxPeriod);
    return r;
}

double
cpiMean(const std::vector<WindowSample> &windows)
{
    // Instruction-weighted ratio estimator: total window cycles over
    // total window instructions. With the schedule's equal-length
    // windows this equals the plain mean of per-window CPIs, but it
    // stays unbiased when window lengths vary — the final window is
    // cut short when the run quiesces, and chip-wide scheduling can
    // overshoot a boundary by a chunk — where an unweighted mean
    // would give a tiny tail window the same vote as a full one.
    std::uint64_t cycles = 0, insts = 0;
    for (const WindowSample &w : windows) {
        cycles += w.cycles;
        insts += w.insts;
    }
    return insts ? static_cast<double>(cycles) /
                       static_cast<double>(insts)
                 : 0.0;
}

double
cpiStderr(const std::vector<WindowSample> &windows)
{
    const std::size_t n = windows.size();
    if (n < 2)
        return 0.0;
    const double mean = cpiMean(windows);
    double ss = 0.0;
    for (const WindowSample &w : windows) {
        const double d = w.cpi() - mean;
        ss += d * d;
    }
    const double var = ss / static_cast<double>(n - 1);
    return std::sqrt(var / static_cast<double>(n));
}

Estimate
estimate(const std::vector<WindowSample> &windows,
         std::uint64_t total_insts, std::uint64_t measured_cycles,
         std::uint64_t warmed_insts)
{
    Estimate e;
    e.windows = windows.size();
    e.measuredCycles = measured_cycles;
    e.insts = total_insts;

    if (warmed_insts == 0 || windows.empty()) {
        // The run never fast-forwarded (or produced no usable
        // window): the simulated cycle count is exact.
        e.sampled = false;
        e.estCycles = static_cast<double>(measured_cycles);
        return e;
    }

    e.sampled = true;
    e.cpiMean = cpiMean(windows);
    e.cpiStderr = cpiStderr(windows);
    const double insts = static_cast<double>(total_insts);
    e.estCycles = e.cpiMean * insts;
    // Normal-approximation 95% interval on the mean CPI, scaled to
    // total cycles. With one window the stderr (and the interval) is
    // zero; the reported interval is then "no variance information",
    // not "no error" — the docs call this out.
    e.ciHalfWidthCycles = 1.96 * e.cpiStderr * insts;
    return e;
}

double
relativeHalfWidth(const Estimate &e)
{
    if (!e.sampled || e.estCycles <= 0.0)
        return 0.0;
    return e.ciHalfWidthCycles / e.estCycles;
}

std::uint64_t
nextAdaptivePeriod(const SampleParams &p, double achieved)
{
    const SampleParams r = p.resolvedAdaptive();
    double scale;
    if (achieved <= 0.0) {
        scale = 0.5;
    } else {
        const double ratio = r.ciTarget / achieved;
        scale = std::clamp(ratio * ratio, 1.0 / 16.0, 4.0);
    }
    const double next = static_cast<double>(r.period) * scale;
    const double lo = static_cast<double>(r.minPeriod);
    const double hi = static_cast<double>(r.maxPeriod);
    return static_cast<std::uint64_t>(std::clamp(next, lo, hi));
}

} // namespace remap::sampling
