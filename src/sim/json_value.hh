/**
 * @file
 * Minimal recursive-descent JSON reader: parses the JSON the
 * simulator itself writes (stats dumps, run manifests, BENCH files)
 * into an owning tree of json::Value nodes. Complements json.hh,
 * which is write-only.
 *
 * Scope matches the producer: UTF-8 passthrough (no \u surrogate
 * decoding beyond copying the escape's code point as-is for the BMP),
 * numbers parsed as double, no comments or trailing commas.
 */

#ifndef REMAP_SIM_JSON_VALUE_HH
#define REMAP_SIM_JSON_VALUE_HH

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace remap::json
{

/** One parsed JSON node. */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Value> arr;
    std::map<std::string, Value> obj;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** True when this object has member @p key. */
    bool
    has(const std::string &key) const
    {
        return kind == Kind::Object && obj.count(key) > 0;
    }

    /** Member @p key; throws std::out_of_range when absent. */
    const Value &at(const std::string &key) const { return obj.at(key); }
};

/**
 * Parse @p text as one JSON document.
 *
 * @param[out] out the parsed tree (valid only on success)
 * @param[out] error human-readable failure description with offset
 *             (may be null)
 * @return true on success
 */
bool parse(std::string_view text, Value &out, std::string *error = nullptr);

} // namespace remap::json

#endif // REMAP_SIM_JSON_VALUE_HH
