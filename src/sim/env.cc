#include "sim/env.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/logging.hh"

namespace remap::env
{
namespace
{

/** Read a boolean kill switch, logging the first time it is seen
 *  set. The value is re-read every call (tests toggle switches with
 *  setenv() around component construction); only the announcement is
 *  once-per-process. */
bool
killSwitch(const char *name, const char *what,
           std::atomic<bool> &announced)
{
    const bool set = std::getenv(name) != nullptr;
    if (set && !announced.exchange(true))
        REMAP_INFORM("%s set: %s disabled", name, what);
    return set;
}

} // namespace

bool
noLeap()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_LEAP", "event-horizon leap scheduler",
                      announced);
}

bool
noBlockCache()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_BLOCK_CACHE",
                      "decoded basic-block cache", announced);
}

bool
noMru()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_MRU", "cache MRU-way fast path",
                      announced);
}

bool
noThreaded()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_THREADED",
                      "computed-goto threaded dispatch", announced);
}

bool
noSampleReplay()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_SAMPLE_REPLAY",
                      "checkpointed sample replay", announced);
}

namespace
{

/** Split @p text on ','. Empty fields are preserved (and rejected by
 *  the field parsers). */
std::vector<std::string>
splitFields(const char *text)
{
    std::vector<std::string> fields;
    std::string cur;
    for (const char *p = text; *p; ++p) {
        if (*p == ',') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(*p);
        }
    }
    fields.push_back(cur);
    return fields;
}

/** Strict decimal u64: digits only, nonempty, no overflow. */
bool
parseU64Field(const std::string &f, std::uint64_t *out)
{
    if (f.empty() || f.size() > 19)
        return false;
    std::uint64_t v = 0;
    for (char c : f) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
}

/** Strict double in (0, 1): full consumption, no signs/spaces. */
bool
parseTargetField(const std::string &f, double *out)
{
    if (f.empty() || f[0] == '-' || f[0] == '+' ||
        std::isspace(static_cast<unsigned char>(f[0])))
        return false;
    char *end = nullptr;
    const double v = std::strtod(f.c_str(), &end);
    if (end != f.c_str() + f.size())
        return false;
    if (!(v > 0.0) || !(v < 1.0))
        return false;
    *out = v;
    return true;
}

bool
sampleSpecError(const char *text, std::string *error,
                const std::string &why)
{
    if (error) {
        *error = "invalid REMAP_SAMPLE='" + std::string(text) +
                 "': " + why +
                 " (want P[,M[,W]] instruction counts, "
                 "'auto[,HALFWIDTH]', or '1')";
    }
    return false;
}

} // namespace

bool
parseSampleSpec(const char *text, sampling::SampleParams *out,
                std::string *error)
{
    *out = sampling::SampleParams{};
    if (!text || !*text)
        return sampleSpecError(text ? text : "", error,
                               "empty value");

    const std::vector<std::string> fields = splitFields(text);

    if (fields[0] == "auto") {
        // auto[,H] — adaptive schedule with a relative CI half-width
        // target.
        sampling::SampleParams p = sampling::SampleParams::autoDefaults();
        if (fields.size() > 2)
            return sampleSpecError(text, error,
                                   "trailing garbage after the "
                                   "'auto' target");
        if (fields.size() == 2 &&
            !parseTargetField(fields[1], &p.ciTarget))
            return sampleSpecError(
                text, error,
                "half-width target '" + fields[1] +
                    "' must be a plain decimal in (0, 1)");
        *out = p;
        return true;
    }

    if (std::strcmp(text, "1") == 0) {
        *out = sampling::SampleParams::defaults();
        return true;
    }

    // P[,M[,W]] — period, measured window, detailed warm-up.
    if (fields.size() > 3)
        return sampleSpecError(text, error,
                               "trailing garbage after the schedule");
    sampling::SampleParams p = sampling::SampleParams::defaults();
    std::uint64_t *const dest[3] = {&p.period, &p.window, &p.warm};
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (!parseU64Field(fields[i], dest[i]))
            return sampleSpecError(
                text, error,
                "malformed instruction count '" + fields[i] + "'");
    }
    if (p.period == 0)
        return sampleSpecError(text, error,
                               "period must be positive");
    if (p.window == 0)
        return sampleSpecError(text, error,
                               "window must be positive");
    if (p.window > p.period)
        return sampleSpecError(text, error,
                               "window exceeds the period");
    if (p.warm + p.window > p.period)
        return sampleSpecError(text, error,
                               "warm+window exceeds the period");
    *out = p;
    return true;
}

sampling::SampleParams
sampleParams()
{
    const char *env = std::getenv("REMAP_SAMPLE");
    if (!env || !*env)
        return sampling::SampleParams{};

    sampling::SampleParams p;
    std::string err;
    if (!parseSampleSpec(env, &p, &err))
        REMAP_FATAL("%s", err.c_str());

    static std::atomic<bool> announced{false};
    if (!announced.exchange(true)) {
        if (p.adaptive()) {
            const sampling::SampleParams r = p.resolvedAdaptive();
            REMAP_INFORM("REMAP_SAMPLE set: adaptive sampled mode "
                         "(ci target %.3g, period clamp "
                         "[%llu, %llu] insts)",
                         p.ciTarget,
                         static_cast<unsigned long long>(r.minPeriod),
                         static_cast<unsigned long long>(r.maxPeriod));
        } else {
            REMAP_INFORM("REMAP_SAMPLE set: sampled mode (period=%llu "
                         "window=%llu warm=%llu insts)",
                         static_cast<unsigned long long>(p.period),
                         static_cast<unsigned long long>(p.window),
                         static_cast<unsigned long long>(p.warm));
        }
    }
    return p;
}

} // namespace remap::env
