#include "sim/env.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace remap::env
{
namespace
{

/** Read a boolean kill switch, logging the first time it is seen
 *  set. The value is re-read every call (tests toggle switches with
 *  setenv() around component construction); only the announcement is
 *  once-per-process. */
bool
killSwitch(const char *name, const char *what,
           std::atomic<bool> &announced)
{
    const bool set = std::getenv(name) != nullptr;
    if (set && !announced.exchange(true))
        REMAP_INFORM("%s set: %s disabled", name, what);
    return set;
}

} // namespace

bool
noLeap()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_LEAP", "event-horizon leap scheduler",
                      announced);
}

bool
noBlockCache()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_BLOCK_CACHE",
                      "decoded basic-block cache", announced);
}

bool
noMru()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_MRU", "cache MRU-way fast path",
                      announced);
}

bool
noThreaded()
{
    static std::atomic<bool> announced{false};
    return killSwitch("REMAP_NO_THREADED",
                      "computed-goto threaded dispatch", announced);
}

sampling::SampleParams
sampleParams()
{
    const char *env = std::getenv("REMAP_SAMPLE");
    if (!env || !*env)
        return sampling::SampleParams{};

    sampling::SampleParams p = sampling::SampleParams::defaults();
    if (std::strcmp(env, "1") != 0) {
        // P[,M[,W]] — period, measured window, detailed warm-up.
        unsigned long long period = 0, window = 0, warm = 0;
        const int n = std::sscanf(env, "%llu,%llu,%llu", &period,
                                  &window, &warm);
        if (n < 1 || period == 0) {
            static std::atomic<bool> warned{false};
            if (!warned.exchange(true)) {
                REMAP_WARN("ignoring invalid REMAP_SAMPLE='%s' "
                           "(want P[,M[,W]] instructions)", env);
            }
            return sampling::SampleParams{};
        }
        p.period = period;
        if (n >= 2)
            p.window = window;
        if (n >= 3)
            p.warm = warm;
    }

    if (p.warm + p.window > p.period) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            REMAP_WARN("REMAP_SAMPLE warm+window exceeds the period; "
                       "sampling disabled");
        }
        return sampling::SampleParams{};
    }

    static std::atomic<bool> announced{false};
    if (!announced.exchange(true)) {
        REMAP_INFORM("REMAP_SAMPLE set: sampled mode (period=%llu "
                     "window=%llu warm=%llu insts)",
                     static_cast<unsigned long long>(p.period),
                     static_cast<unsigned long long>(p.window),
                     static_cast<unsigned long long>(p.warm));
    }
    return p;
}

} // namespace remap::env
