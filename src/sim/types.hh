/**
 * @file
 * Fundamental simulation types shared by every ReMAP subsystem.
 */

#ifndef REMAP_SIM_TYPES_HH
#define REMAP_SIM_TYPES_HH

#include <cstdint>

namespace remap
{

/** A simulated time step, counted in core clock cycles (2 GHz). */
using Cycle = std::uint64_t;

/** A simulated byte address in the shared physical address space. */
using Addr = std::uint64_t;

/** Identifier of a hardware core within the chip (dense, 0-based). */
using CoreId = std::uint32_t;

/** Identifier of a software thread (dense, 0-based, per application). */
using ThreadId = std::uint32_t;

/** Identifier of an application (address-space / SPL app ID). */
using AppId = std::uint32_t;

/** Identifier of an SPL cluster on the chip. */
using ClusterId = std::uint32_t;

/** Identifier of a loaded SPL configuration (function). */
using ConfigId = std::uint32_t;

/** Sentinel for "no core". */
inline constexpr CoreId invalidCore = ~CoreId{0};

/** Sentinel for "no thread". */
inline constexpr ThreadId invalidThread = ~ThreadId{0};

/** Sentinel cycle value meaning "never / not scheduled". */
inline constexpr Cycle neverCycle = ~Cycle{0};

/**
 * Clock parameters of the simulated chip.
 *
 * The paper fixes the cores at 2 GHz and the SPL at 500 MHz (a 4:1
 * ratio), both in 65 nm at 1.1 V.
 */
struct ClockParams
{
    /** Core frequency in Hz. */
    double coreFreqHz = 2.0e9;
    /** SPL fabric frequency in Hz. */
    double splFreqHz = 0.5e9;

    /** Core cycles per SPL cycle (must divide evenly). */
    unsigned
    coreCyclesPerSplCycle() const
    {
        return static_cast<unsigned>(coreFreqHz / splFreqHz);
    }

    /** Convert a count of core cycles to seconds. */
    double
    cyclesToSeconds(Cycle cycles) const
    {
        return static_cast<double>(cycles) / coreFreqHz;
    }
};

} // namespace remap

#endif // REMAP_SIM_TYPES_HH
