#include "sim/profile.hh"

#include <cstdlib>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "sim/json.hh"

namespace remap::prof
{

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::FetchDecode:
        return "fetch_decode";
      case Phase::IssueExecute:
        return "issue_execute";
      case Phase::WritebackCommit:
        return "writeback_commit";
      case Phase::CacheAccess:
        return "cache_access";
      case Phase::FabricTick:
        return "fabric_tick";
      case Phase::Barrier:
        return "barrier";
      case Phase::LeapScan:
        return "leap_scan";
      case Phase::SnapshotSave:
        return "snapshot_save";
      case Phase::SnapshotRestore:
        return "snapshot_restore";
      case Phase::JobDispatch:
        return "job_dispatch";
    }
    return "unknown";
}

bool
envEnabled()
{
    static const bool enabled = std::getenv("REMAP_PROFILE") != nullptr;
    return enabled;
}

void
Profiler::merge(const Profiler &other)
{
    for (unsigned i = 0; i < kNumPhases; ++i) {
        phases_[i].count += other.phases_[i].count.value();
        phases_[i].totalNs += other.phases_[i].totalNs.value();
        phases_[i].hist.merge(other.phases_[i].hist);
    }
}

void
Profiler::reset()
{
    for (unsigned i = 0; i < kNumPhases; ++i) {
        phases_[i].count.reset();
        phases_[i].totalNs.reset();
        phases_[i].hist.reset();
    }
}

void
Profiler::dumpJson(json::Writer &w) const
{
    w.beginObject();
    for (unsigned i = 0; i < kNumPhases; ++i) {
        const PhaseStats &ps = phases_[i];
        if (ps.count.value() == 0)
            continue;
        w.key(phaseName(static_cast<Phase>(i)));
        w.beginObject();
        w.kv("count", ps.count.value());
        w.kv("total_ns", ps.totalNs.value());
        w.kv("p50_ns", ps.hist.p50());
        w.kv("p95_ns", ps.hist.p95());
        w.kv("p99_ns", ps.hist.p99());
        w.key("hist");
        ps.hist.dumpJson(w);
        w.endObject();
    }
    w.endObject();
}

void
Profiler::dump(std::ostream &os) const
{
    for (unsigned i = 0; i < kNumPhases; ++i) {
        const PhaseStats &ps = phases_[i];
        if (ps.count.value() == 0)
            continue;
        os << "profile." << phaseName(static_cast<Phase>(i)) << " n="
           << ps.count.value() << " total_ms=" << totalMs(static_cast<Phase>(i))
           << " p50_ns=" << ps.hist.p50() << " p95_ns=" << ps.hist.p95()
           << " p99_ns=" << ps.hist.p99() << '\n';
    }
}

namespace
{

std::mutex &
processMutex()
{
    static std::mutex m;
    return m;
}

Profiler &
processProfiler()
{
    static Profiler p;
    return p;
}

std::map<std::string, void (*)(json::Writer &)> &
metaHooks()
{
    static std::map<std::string, void (*)(json::Writer &)> hooks;
    return hooks;
}

std::mutex &
hookMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
mergeIntoProcess(const Profiler &p)
{
    std::lock_guard<std::mutex> lock(processMutex());
    processProfiler().merge(p);
}

void
recordProcess(Phase p, std::uint64_t ns)
{
    std::lock_guard<std::mutex> lock(processMutex());
    processProfiler().record(p, ns);
}

Profiler
processSnapshot()
{
    std::lock_guard<std::mutex> lock(processMutex());
    return processProfiler();
}

void
setMetaJsonHook(const char *key, void (*fn)(json::Writer &))
{
    std::lock_guard<std::mutex> lock(hookMutex());
    if (fn)
        metaHooks()[key] = fn;
    else
        metaHooks().erase(key);
}

void
dumpMetaHooks(json::Writer &w)
{
    std::lock_guard<std::mutex> lock(hookMutex());
    for (const auto &[key, fn] : metaHooks()) {
        w.key(key);
        fn(w);
    }
}

} // namespace remap::prof
