/**
 * @file
 * SMARTS-style sampled-simulation schedule and estimator.
 *
 * Sampled mode alternates three phases on an instruction-count
 * schedule: a detailed *warm-up* (full OOO timing, not measured, so
 * pipeline/queue state recovers from the fast-forward), a detailed
 * *measured window* (full timing, contributes one CPI observation),
 * and *functional warming* fast-forward (architectural execution
 * plus cache/branch-predictor/SPL warming at one instruction per
 * cycle, no OOO pipeline). Each period of P committed instructions
 * is laid out [warm W | window M | functional warming P-W-M].
 *
 * The estimator treats the per-window CPI values as an i.i.d. sample
 * (the systematic-sampling approximation of Wunderlich et al.,
 * SMARTS, ISCA'03): estimated cycles = mean CPI x total committed
 * instructions, with a normal-approximation 95% confidence interval
 * from the sample standard error. The math lives in free functions
 * with no simulator dependencies so unit tests can check it against
 * hand-computed oracles.
 */

#ifndef REMAP_SIM_SAMPLING_HH
#define REMAP_SIM_SAMPLING_HH

#include <cstdint>
#include <vector>

namespace remap::sampling
{

/** The instruction-count sampling schedule. All lengths are in
 *  committed instructions; period == 0 means sampling is off. */
struct SampleParams
{
    std::uint64_t period = 0; ///< instructions per sampling period
    std::uint64_t window = 0; ///< measured detailed window length
    std::uint64_t warm = 0;   ///< detailed warm-up before the window

    /** @{ @name Adaptive (matched-pair) schedule control.
     * ciTarget > 0 requests an adaptive run: the harness starts from
     * a coarse period (maxPeriod unless `period` is set) and re-runs
     * the region with narrower periods until the *relative* 95% CI
     * half-width of the CPI estimate is <= ciTarget, with the period
     * clamped to [minPeriod, maxPeriod] (0 selects the defaults
     * below). The converged schedule is reported as provenance. */
    double ciTarget = 0.0;       ///< relative half-width target (0 = fixed)
    std::uint64_t minPeriod = 0; ///< lower period clamp (0 = default)
    std::uint64_t maxPeriod = 0; ///< upper period clamp (0 = default)
    /** @} */

    static constexpr double kDefaultCiTarget = 0.02;
    static constexpr std::uint64_t kDefaultMinPeriod = 10'000;
    static constexpr std::uint64_t kDefaultMaxPeriod = 200'000;

    bool enabled() const { return period > 0; }
    bool adaptive() const { return ciTarget > 0.0; }
    /** Sampled execution requested in any form (fixed or adaptive). */
    bool active() const { return enabled() || adaptive(); }

    /** The default schedule selected by REMAP_SAMPLE=1. */
    static SampleParams defaults()
    {
        return SampleParams{50000, 2000, 1000};
    }

    /** The adaptive request selected by REMAP_SAMPLE=auto[,H]. */
    static SampleParams autoDefaults(double target = kDefaultCiTarget)
    {
        SampleParams p;
        p.window = defaults().window;
        p.warm = defaults().warm;
        p.ciTarget = target;
        return p;
    }

    /**
     * A copy with every adaptive field made concrete: window/warm
     * defaulted when zero, clamps resolved (minPeriod raised to at
     * least warm+window, maxPeriod raised to at least minPeriod) and
     * the period defaulted to maxPeriod — the coarse starting point —
     * then clamped into [minPeriod, maxPeriod].
     */
    SampleParams resolvedAdaptive() const;

    friend bool operator==(const SampleParams &a, const SampleParams &b)
    {
        return a.period == b.period && a.window == b.window &&
               a.warm == b.warm && a.ciTarget == b.ciTarget &&
               a.minPeriod == b.minPeriod && a.maxPeriod == b.maxPeriod;
    }
};

/** One measured window: cycle and instruction deltas over the
 *  detailed measured phase. */
struct WindowSample
{
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;

    double cpi() const
    {
        return insts ? static_cast<double>(cycles) /
                           static_cast<double>(insts)
                     : 0.0;
    }
};

/** The extrapolated result of a sampled run. */
struct Estimate
{
    bool sampled = false;      ///< false: run was fully detailed
    std::uint64_t windows = 0; ///< number of measured windows
    double cpiMean = 0.0;      ///< mean CPI over the windows
    double cpiStderr = 0.0;    ///< standard error of the mean CPI
    double estCycles = 0.0;    ///< extrapolated total cycles
    double ciHalfWidthCycles = 0.0; ///< 95% CI half-width, cycles
    std::uint64_t measuredCycles = 0; ///< raw simulated cycles
    std::uint64_t insts = 0;   ///< exact total committed instructions

    double ciLowCycles() const { return estCycles - ciHalfWidthCycles; }
    double ciHighCycles() const { return estCycles + ciHalfWidthCycles; }
};

/** Instruction-weighted mean CPI over the windows — total window
 *  cycles / total window instructions (0 when empty). Equals the
 *  plain per-window mean for the schedule's equal-length windows but
 *  stays unbiased for the cut-short final window. */
double cpiMean(const std::vector<WindowSample> &windows);

/** Standard error of the mean CPI: s / sqrt(n) with the n-1 sample
 *  variance of the per-window CPIs around cpiMean(). Zero for fewer
 *  than two windows. */
double cpiStderr(const std::vector<WindowSample> &windows);

/**
 * Build the extrapolated estimate for a run that committed
 * @p total_insts instructions in @p measured_cycles simulated cycles
 * (detailed + functional-warming cycles combined), with
 * @p warmed_insts of those instructions executed under functional
 * warming. When @p warmed_insts is zero the run never left detailed
 * mode (short region): the estimate collapses to the exact cycle
 * count with a zero-width interval and `sampled == false`.
 */
Estimate estimate(const std::vector<WindowSample> &windows,
                  std::uint64_t total_insts,
                  std::uint64_t measured_cycles,
                  std::uint64_t warmed_insts);

/** Relative 95% CI half-width of @p e (half-width over estimated
 *  cycles); 0 for non-sampled or degenerate estimates — including the
 *  single-window "no variance information" case. */
double relativeHalfWidth(const Estimate &e);

/**
 * One matched-pair controller step: the period to try after a run at
 * @p p (a concrete schedule carrying the adaptive fields) achieved a
 * relative half-width of @p achieved. The half-width scales like
 * 1/sqrt(#windows) and #windows like 1/period, so the period that
 * hits the target scales by (target/achieved)^2; the per-step scale
 * is bounded to [1/16, 4] (variance estimates from few windows are
 * noisy) and the result clamped to [max(minPeriod, warm+window),
 * maxPeriod]. @p achieved <= 0 means "no variance information"
 * (fewer than two windows): the period halves to buy more windows.
 */
std::uint64_t nextAdaptivePeriod(const SampleParams &p,
                                 double achieved);

} // namespace remap::sampling

#endif // REMAP_SIM_SAMPLING_HH
