#include "sim/logging.hh"

#include <cstdarg>
#include <mutex>
#include <vector>

namespace remap
{

namespace
{

/** Serializes all log output so concurrent harness workers never
 *  interleave within (or between) messages. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

thread_local std::string log_context;

/** Compose the full line and hand it to stderr as ONE write, under
 *  the log mutex, so parallel-harness output stays line-atomic. */
void
emitLine(const char *level, const std::string &msg)
{
    std::string line = level;
    line += ": ";
    if (!log_context.empty()) {
        line += '[';
        line += log_context;
        line += "] ";
    }
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lk(logMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

void
setLogContext(std::string ctx)
{
    log_context = std::move(ctx);
}

const std::string &
logContext()
{
    return log_context;
}

ScopedLogContext::ScopedLogContext(std::string ctx)
    : prev_(log_context)
{
    log_context = std::move(ctx);
}

ScopedLogContext::~ScopedLogContext()
{
    log_context = std::move(prev_);
}

namespace detail
{

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine("panic",
             msg + detail::formatString("\n  at %s:%d", file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine("fatal",
             msg + detail::formatString("\n  at %s:%d", file, line));
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn", msg);
}

void
informImpl(const std::string &msg)
{
    emitLine("info", msg);
}

} // namespace detail
} // namespace remap
